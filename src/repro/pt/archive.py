"""Durable trace archives: the segmented ``RPT2`` on-disk format.

The paper's online collector "periodically dumps trace packets to files"
and exports JIT metadata *before GC reclaims it* (Sections 3 and 6); the
dump files are the whole contract between the online and offline halves.
The flat ``RPT1`` stream (:mod:`repro.pt.serialize`) honours none of the
durability half of that contract: one torn write makes ``read_stream``
raise and the entire trace is gone, and the
:class:`~repro.core.metadata.CodeDatabase` has no on-disk form at all.
This module is the disk-durability counterpart of the decoder's hostile
-input hardening: damage to an archive degrades into dropped segments and
synthetic loss records, never an exception.

Archive layout (little-endian)::

    "RPT2"                                  file magic (4 bytes)
    record*                                 append-only record sequence

    record := sync(2) header(33) hcrc(4) payload(len) commit(5)
      sync     A5 5A                        resync marker for salvage
      header   u8  type                     1=segment 2=code-dump
                                            3=sideband 4=format 7F=seal
               u32 seq                      archive-wide, contiguous from 0
               u32 core                     producing core (0 for metadata)
               u64 tsc_start, u64 tsc_end   payload's TSC span
               u32 payload_len
               u32 payload_crc32
      hcrc     u32 crc32(header)            header self-check
      payload  type-specific bytes          segment payloads are RPT1
                                            bodies (no magic)
      commit   u8 C3, u32 payload_len       commit-length-last: written
                                            (and flushed) only after the
                                            payload bytes are on disk

A crash between the payload flush and the commit flush leaves a torn
record that the salvage reader detects (commit marker or trailing length
missing/mismatched) and drops without losing anything before or after
it.  :meth:`ArchiveWriter.close` appends an empty **seal** record; an
archive without one was truncated or never closed
(:attr:`~repro.pt.decoder.AnomalyKind.ARCHIVE_UNSEALED`), yet everything
present still salvages.

Metadata travels two ways, mirroring the paper's export timeline:

* a **snapshot** sidecar (``<archive>.meta`` by default) with the
  template-interpreter ranges + address space (collected at JVM init),
  written atomically via temp + ``os.replace``;
* incremental **code-dump journal** records appended to the archive as
  each method is compiled -- the dump-before-GC-reclaim export.

The salvage reader (:func:`read_archive`) **never raises on hostile
files**: a segment with a bad CRC, short payload, missing commit, or a
gap/duplicate in the sequence numbering is dropped and converted into a
synthetic :class:`~repro.pt.packets.AuxLossRecord` spanning its TSC
range, which the decode pipeline routes into the existing
:class:`~repro.core.recovery.RecoveryEngine` hole recovery (Algorithms
3-4).  Legacy ``RPT1`` files are readable through the same entry point,
with best-effort prefix salvage on damage.

Both the one-shot reader and the streaming :class:`ArchiveTailReader`
run on the same resumable scanner, so an archive consumed segment by
segment as it grows yields byte-for-byte the salvage stats and contents
of a batch read of the sealed file.  The crucial difference between the
two modes is the open tail: a reader polling an *unsealed, growing*
archive must treat an incomplete record at EOF as "no trailer yet, more
data coming" -- leaving the bytes pending for the next poll -- whereas
the batch reader (which sees the final file) converts the same bytes
into a torn-record salvage event.  Only :meth:`ArchiveTailReader.finalize`
applies the end-of-file semantics.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..jvm.machine import MachineInstruction, MIKind, ThreadSwitchRecord
from .decoder import AnomalyKind
from .packets import AuxLossRecord
from .serialize import TraceFormatError, iter_body, write_body

ARCHIVE_MAGIC = b"RPT2"
LEGACY_MAGIC = b"RPT1"
SNAPSHOT_MAGIC = b"RPM2"

#: Format versions for the two metadata payloads (bump on layout change;
#: readers reject versions they do not know -- salvage treats that as a
#: corrupt record, not a crash).
SNAPSHOT_VERSION = 1
CODE_DUMP_VERSION = 1

REC_SEGMENT = 0x01
REC_CODE_DUMP = 0x02
REC_SIDEBAND = 0x03
#: Trace-format declaration: payload is the frontend name (utf-8).
#: Written as the very first record when the archive holds a non-PT
#: stream, so the scanner registers that frontend's entry codecs before
#: any segment body parses.  Absent means ``"pt"`` (legacy archives).
REC_FORMAT = 0x04
REC_SEAL = 0x7F

_KNOWN_TYPES = (REC_SEGMENT, REC_CODE_DUMP, REC_SIDEBAND, REC_FORMAT, REC_SEAL)

_SYNC = b"\xa5\x5a"
_COMMIT = 0xC3
#: type, seq, core, tsc_start, tsc_end, payload_len, payload_crc32
_HEADER = struct.Struct("<BIIQQII")
_HCRC = struct.Struct("<I")
_TRAILER = struct.Struct("<BI")
#: On-disk framing bytes per record (sync + header + hcrc + trailer).
RECORD_OVERHEAD = len(_SYNC) + _HEADER.size + _HCRC.size + _TRAILER.size

_SWITCH = struct.Struct("<IIQ")  # core, tid, tsc


class ArchiveFormatError(TraceFormatError):
    """Raised only in ``strict`` mode; salvage mode never raises it."""


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


# =====================================================================
# Metadata serialisation (versioned)
# =====================================================================


def _pack_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise ValueError("string too long to serialise: %d bytes" % len(data))
    out += struct.pack("<H", len(data))
    out += data


class _Cursor:
    """Bounds-checked reader over a metadata payload."""

    def __init__(self, data: bytes, label: str):
        self.data = data
        self.pos = 0
        self.label = label

    def need(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise ArchiveFormatError(
                "truncated %s payload at offset %d" % (self.label, self.pos),
                offset=self.pos,
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return bytes(chunk)

    def unpack(self, layout: str):
        return struct.unpack(layout, self.need(struct.calcsize(layout)))

    def string(self) -> str:
        (length,) = self.unpack("<H")
        return self.need(length).decode("utf-8")


def serialize_code_dump(dump) -> bytes:
    """One :class:`~repro.core.metadata.CodeDump` -> journal payload."""
    out = bytearray(struct.pack("<H", CODE_DUMP_VERSION))
    _pack_str(out, dump.qname)
    out += struct.pack(
        "<QQQQ",
        dump.entry,
        dump.limit,
        dump.load_tsc,
        0 if dump.unload_tsc is None else dump.unload_tsc + 1,
    )
    out += struct.pack(
        "<q",
        -1 if dump.declared_debug_count is None else dump.declared_debug_count,
    )
    out += struct.pack("<I", len(dump.instructions))
    for mi in dump.instructions:
        out += struct.pack(
            "<QHQ", mi.address, mi.size, 0 if mi.target is None else mi.target + 1
        )
        _pack_str(out, mi.kind.value)
        _pack_str(out, mi.text)
    out += struct.pack("<I", len(dump.debug))
    for address in sorted(dump.debug):
        frames = dump.debug[address]
        out += struct.pack("<QH", address, len(frames))
        for qname, bci in frames:
            _pack_str(out, qname)
            out += struct.pack("<q", bci)
    return bytes(out)


def deserialize_code_dump(data: bytes):
    """Parse a journal payload; raises :class:`TraceFormatError` on damage."""
    from ..core.metadata import CodeDump

    cursor = _Cursor(data, "code-dump")
    (version,) = cursor.unpack("<H")
    if version != CODE_DUMP_VERSION:
        raise TraceFormatError("unknown code-dump version %d" % version)
    qname = cursor.string()
    entry, limit, load_tsc, unload_raw = cursor.unpack("<QQQQ")
    (declared,) = cursor.unpack("<q")
    (mi_count,) = cursor.unpack("<I")
    instructions: List[MachineInstruction] = []
    for _ in range(mi_count):
        address, size, target_raw = cursor.unpack("<QHQ")
        kind_value = cursor.string()
        text = cursor.string()
        try:
            kind = MIKind(kind_value)
        except ValueError:
            raise TraceFormatError("unknown instruction kind %r" % kind_value)
        instructions.append(
            MachineInstruction(
                address=address,
                size=size,
                kind=kind,
                target=None if target_raw == 0 else target_raw - 1,
                text=text,
            )
        )
    (debug_count,) = cursor.unpack("<I")
    debug: Dict[int, Tuple[Tuple[str, int], ...]] = {}
    for _ in range(debug_count):
        address, frame_count = cursor.unpack("<QH")
        frames = []
        for _ in range(frame_count):
            frame_qname = cursor.string()
            (bci,) = cursor.unpack("<q")
            frames.append((frame_qname, bci))
        debug[address] = tuple(frames)
    return CodeDump(
        qname=qname,
        entry=entry,
        limit=limit,
        instructions=instructions,
        debug=debug,
        load_tsc=load_tsc,
        unload_tsc=None if unload_raw == 0 else unload_raw - 1,
        declared_debug_count=None if declared < 0 else declared,
    )


def serialize_database(database, include_dumps: bool = True) -> bytes:
    """Versioned :class:`~repro.core.metadata.CodeDatabase` payload.

    ``include_dumps=False`` produces the snapshot the archive writer
    takes at session start -- template ranges + address space only, with
    compiled code travelling through the journal instead.
    """
    out = bytearray(struct.pack("<H", SNAPSHOT_VERSION))
    space = database.address_space
    out += struct.pack(
        "<QQQQQ",
        space.template_base,
        space.template_limit,
        space.code_cache_base,
        space.code_cache_limit,
        space.runtime_base,
    )
    out += struct.pack("<I", len(database.template_metadata))
    for mnemonic in sorted(database.template_metadata):
        _pack_str(out, mnemonic)
        ranges = database.template_metadata[mnemonic]
        out += struct.pack("<I", len(ranges))
        for start, end in ranges:
            out += struct.pack("<QQ", start, end)
    dumps = list(database.code_dumps) if include_dumps else []
    out += struct.pack("<I", len(dumps))
    for dump in dumps:
        blob = serialize_code_dump(dump)
        out += struct.pack("<I", len(blob))
        out += blob
    return bytes(out)


def deserialize_database(data: bytes):
    """Parse a database payload; raises :class:`TraceFormatError`."""
    from ..core.metadata import CodeDatabase
    from ..jvm.machine import AddressSpace

    cursor = _Cursor(data, "snapshot")
    (version,) = cursor.unpack("<H")
    if version != SNAPSHOT_VERSION:
        raise TraceFormatError("unknown snapshot version %d" % version)
    fields = cursor.unpack("<QQQQQ")
    space = AddressSpace(
        template_base=fields[0],
        template_limit=fields[1],
        code_cache_base=fields[2],
        code_cache_limit=fields[3],
        runtime_base=fields[4],
    )
    (template_count,) = cursor.unpack("<I")
    template_metadata: Dict[str, Tuple[Tuple[int, int], ...]] = {}
    for _ in range(template_count):
        mnemonic = cursor.string()
        (range_count,) = cursor.unpack("<I")
        ranges = tuple(cursor.unpack("<QQ") for _ in range(range_count))
        template_metadata[mnemonic] = ranges
    (dump_count,) = cursor.unpack("<I")
    dumps = []
    for _ in range(dump_count):
        (blob_len,) = cursor.unpack("<I")
        dumps.append(deserialize_code_dump(cursor.need(blob_len)))
    return CodeDatabase(template_metadata, dumps, space)


# =====================================================================
# Writer
# =====================================================================


def _tsc_span(entries: Sequence[Tuple[str, object]]) -> Tuple[int, int]:
    lo = hi = 0
    first = True
    for tag, item in entries:
        if tag == "loss":
            start, end = item.start_tsc, item.end_tsc
        else:
            start = end = item.tsc
        if first:
            lo, hi, first = start, end, False
        else:
            lo = min(lo, start)
            hi = max(hi, end)
    return lo, hi


def merge_core_stream(packets, losses) -> List[Tuple[str, object]]:
    """One core's packets + losses as a canonical tagged stream (TSC
    order, packets before losses within a tick)."""
    merged: List[Tuple[str, object]] = [("packet", p) for p in packets]
    merged.extend(("loss", l) for l in losses)
    merged.sort(
        key=lambda entry: (
            entry[1].start_tsc if entry[0] == "loss" else entry[1].tsc,
            entry[0] == "loss",
        )
    )
    return merged


@dataclass
class ArchiveWriteReport:
    """What one export session put on disk."""

    path: str
    snapshot_path: str
    segments: int = 0
    code_dumps: int = 0
    sideband_records: int = 0
    format_records: int = 0
    bytes_written: int = 0
    snapshot_bytes: int = 0


class ArchiveWriter:
    """Append-only ``RPT2`` writer with the commit-length-last protocol.

    Every record's framing and payload are flushed before the 5-byte
    commit trailer (marker + payload length) is written and flushed, so
    the on-disk state is always either "record fully committed" or
    "record detectably torn".  Close appends the seal record.
    """

    def __init__(self, path, snapshot_path=None):
        self.path = str(path)
        self.snapshot_path = (
            str(snapshot_path) if snapshot_path is not None else self.path + ".meta"
        )
        self._sink = open(self.path, "wb")
        self._sink.write(ARCHIVE_MAGIC)
        self._seq = 0
        self._sealed = False
        self.report = ArchiveWriteReport(
            path=self.path, snapshot_path=self.snapshot_path, bytes_written=4
        )

    # ------------------------------------------------------------ records
    def _append(self, rtype: int, core: int, tsc_lo: int, tsc_hi: int,
                payload: bytes) -> int:
        if self._sealed:
            raise ValueError("archive already sealed")
        seq = self._seq
        self._seq += 1
        header = _HEADER.pack(
            rtype, seq, core, tsc_lo, tsc_hi, len(payload), _crc(payload)
        )
        self._sink.write(_SYNC)
        self._sink.write(header)
        self._sink.write(_HCRC.pack(_crc(header)))
        self._sink.write(payload)
        self._sink.flush()
        # Commit-length-last: the record only becomes valid once the
        # trailing (marker, length) pair lands after the payload flush.
        self._sink.write(_TRAILER.pack(_COMMIT, len(payload)))
        self._sink.flush()
        self.report.bytes_written += RECORD_OVERHEAD + len(payload)
        return seq

    def append_segment(
        self,
        core: int,
        entries: Sequence[Tuple[str, object]],
        tsc_span: Optional[Tuple[int, int]] = None,
    ) -> int:
        """Append one per-core chunk of a tagged packet/loss stream."""
        sink = io.BytesIO()
        write_body(entries, sink)
        lo, hi = tsc_span if tsc_span is not None else _tsc_span(entries)
        seq = self._append(REC_SEGMENT, core, lo, hi, sink.getvalue())
        self.report.segments += 1
        return seq

    def append_format(self, name: str) -> int:
        """Declare the archive's trace format (omit for ``"pt"``).

        Must be the first record appended: the salvage scanner parses
        segment bodies as it reaches them, and only a format record seen
        *earlier* in the file gets the right entry codecs registered.
        """
        seq = self._append(REC_FORMAT, 0, 0, 0, name.encode("utf-8"))
        self.report.format_records += 1
        return seq

    def append_code_dump(self, dump) -> int:
        """Journal one compiled-code export (the pre-GC-reclaim dump)."""
        end = dump.load_tsc if dump.unload_tsc is None else dump.unload_tsc
        seq = self._append(
            REC_CODE_DUMP, 0, dump.load_tsc, end, serialize_code_dump(dump)
        )
        self.report.code_dumps += 1
        return seq

    def append_sideband(self, switches: Sequence[ThreadSwitchRecord]) -> int:
        """Append a batch of thread-switch sideband records."""
        out = bytearray(struct.pack("<I", len(switches)))
        for record in switches:
            out += _SWITCH.pack(record.core, record.tid, record.tsc)
        tscs = [record.tsc for record in switches]
        lo = min(tscs) if tscs else 0
        hi = max(tscs) if tscs else 0
        seq = self._append(REC_SIDEBAND, 0, lo, hi, bytes(out))
        self.report.sideband_records += 1
        return seq

    # ----------------------------------------------------------- snapshot
    def snapshot_metadata(self, database, include_dumps: bool = True) -> int:
        """Atomically (temp + rename) replace the metadata snapshot."""
        payload = serialize_database(database, include_dumps=include_dumps)
        blob = (
            SNAPSHOT_MAGIC
            + struct.pack("<II", len(payload), _crc(payload))
            + payload
        )
        temp = self.snapshot_path + ".tmp"
        with open(temp, "wb") as sink:
            sink.write(blob)
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(temp, self.snapshot_path)
        self.report.snapshot_bytes = len(blob)
        return len(blob)

    # -------------------------------------------------------------- close
    def close(self) -> ArchiveWriteReport:
        if not self._sealed:
            self._append(REC_SEAL, 0, 0, 0, b"")
            self._sealed = True
        self._sink.close()
        return self.report

    def abort(self) -> None:
        """Close the file handle without sealing (simulates a crash)."""
        self._sink.close()

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def iter_archive_events(trace, database, segment_packets: int = 256):
    """The canonical record sequence :func:`write_archive` commits.

    Yields, in exact on-disk order, one tuple per record body:

    * ``("format", name)`` -- the trace-format declaration, first, only
      when the trace's frontend is not the implicit ``"pt"``;
    * ``("sideband", switches)`` -- thread-switch batches (all up front);
    * ``("dump", dump)`` -- one code-dump journal record;
    * ``("segment", core, chunk, lo, hi)`` -- one per-core stream chunk.

    Shared between the batch exporter and the streaming/test harnesses
    that commit the same archive record by record, so an incrementally
    grown archive is byte-identical to a batch-written one.
    """
    frontend = getattr(getattr(trace, "config", None), "frontend", "pt") or "pt"
    if frontend != "pt":
        yield ("format", frontend)
    switches = list(trace.thread_switches)
    for start in range(0, len(switches), 1024) or [0]:
        yield ("sideband", switches[start:start + 1024])
    events: List[Tuple[int, int, str, object, object]] = []
    for core_trace in trace.cores:
        merged = merge_core_stream(core_trace.packets, core_trace.losses)
        for start in range(0, len(merged), segment_packets):
            chunk = merged[start:start + segment_packets]
            lo, hi = _tsc_span(chunk)
            events.append((lo, 1, "segment", core_trace.core, (chunk, lo, hi)))
    if database is not None:
        for dump in sorted(database.code_dumps, key=lambda d: d.load_tsc):
            events.append((dump.load_tsc, 0, "dump", 0, dump))
    events.sort(key=lambda event: (event[0], event[1]))
    for _tsc, _rank, kind, core, item in events:
        if kind == "dump":
            yield ("dump", item)
        else:
            chunk, lo, hi = item
            yield ("segment", core, chunk, lo, hi)


def write_archive_event(writer: ArchiveWriter, event) -> int:
    """Commit one :func:`iter_archive_events` tuple; returns its seq."""
    kind = event[0]
    if kind == "format":
        return writer.append_format(event[1])
    if kind == "sideband":
        return writer.append_sideband(event[1])
    if kind == "dump":
        return writer.append_code_dump(event[1])
    if kind == "segment":
        _kind, core, chunk, lo, hi = event
        return writer.append_segment(core, chunk, tsc_span=(lo, hi))
    raise ValueError("unknown archive event %r" % (kind,))


def write_archive(
    trace,
    database,
    path,
    segment_packets: int = 256,
    snapshot_path=None,
    on_segment=None,
) -> ArchiveWriteReport:
    """Export a collected :class:`~repro.pt.perf.PTTrace` + metadata.

    Mirrors the paper's online timeline: the snapshot (template ranges,
    taken at JVM init) goes to the sidecar; thread-switch sideband is
    archived up front; then per-core stream chunks of *segment_packets*
    entries and code-dump journal records interleave in TSC order, each
    dump landing before the first segment that could need it.

    *on_segment*, when given, is called as ``on_segment(seq, core, lo,
    hi)`` after each segment record's commit trailer is flushed -- the
    hook a streaming consumer uses to decode segment-by-segment while
    collection is still running.
    """
    with ArchiveWriter(path, snapshot_path=snapshot_path) as writer:
        if database is not None:
            writer.snapshot_metadata(database, include_dumps=False)
        for event in iter_archive_events(trace, database, segment_packets):
            seq = write_archive_event(writer, event)
            if on_segment is not None and event[0] == "segment":
                on_segment(seq, event[1], event[3], event[4])
        return writer.close()


# =====================================================================
# Salvage reader
# =====================================================================


@dataclass(frozen=True)
class SalvageEvent:
    """One absorbed archive fault."""

    kind: AnomalyKind
    offset: int
    detail: str
    seq: Optional[int] = None
    core: Optional[int] = None


@dataclass
class SalvageStats:
    """Degradation metrics for one archive read.

    Byte accounting invariant (asserted by the corpus and fuzz suites)::

        bytes_salvaged + bytes_dropped + bytes_converted_to_loss
            == file_size

    where *salvaged* bytes landed in decodable records, *converted*
    bytes were committed segment payloads re-expressed as synthetic loss
    records, and *dropped* bytes are framing/garbage kept by nobody.
    """

    file_size: int = 0
    segments_total: int = 0
    segments_salvaged: int = 0
    segments_dropped: int = 0
    bytes_salvaged: int = 0
    bytes_dropped: int = 0
    bytes_converted_to_loss: int = 0
    loss_records_synthesized: int = 0
    loss_bytes_synthesized: int = 0
    sequence_gaps: int = 0
    sequence_duplicates: int = 0
    metadata_snapshots_missing: int = 0
    metadata_dumps_salvaged: int = 0
    metadata_dumps_dropped: int = 0
    sealed: bool = False
    legacy: bool = False
    events: List[SalvageEvent] = field(default_factory=list)

    def record(
        self,
        kind: AnomalyKind,
        offset: int,
        detail: str,
        seq: Optional[int] = None,
        core: Optional[int] = None,
    ) -> None:
        self.events.append(
            SalvageEvent(kind=kind, offset=offset, detail=detail, seq=seq, core=core)
        )

    def by_kind(self) -> Dict[str, int]:
        breakdown: Dict[str, int] = {}
        for event in self.events:
            key = event.kind.value
            breakdown[key] = breakdown.get(key, 0) + 1
        return breakdown

    @property
    def clean(self) -> bool:
        return not self.events


@dataclass
class ArchiveContents:
    """Everything one archive (plus sidecar) yielded after salvage."""

    path: str
    stats: SalvageStats
    cores: Dict[int, List[Tuple[str, object]]] = field(default_factory=dict)
    thread_switches: List[ThreadSwitchRecord] = field(default_factory=list)
    #: Frontend name from the format record; ``"pt"`` when absent.
    trace_format: str = "pt"
    #: Snapshot + journal, when the snapshot sidecar was readable.
    database: Optional[object] = None
    #: Journal dumps (also merged into ``database`` when it exists).
    journal_dumps: List[object] = field(default_factory=list)

    def database_or_empty(self):
        """The salvaged database; with the snapshot gone, journal dumps
        still decode JIT code while template decode degrades."""
        if self.database is not None:
            return self.database
        from ..core.metadata import CodeDatabase
        from ..jvm.machine import AddressSpace

        return CodeDatabase({}, list(self.journal_dumps), AddressSpace())

    def to_trace(self, config=None):
        """Rebuild a :class:`~repro.pt.perf.PTTrace` for the pipeline."""
        from .encoder import EncoderStats
        from .perf import CoreTrace, PTConfig, PTTrace

        cores = []
        for core_id in sorted(self.cores):
            entries = self.cores[core_id]
            packets = [item for tag, item in entries if tag == "packet"]
            losses = [item for tag, item in entries if tag == "loss"]
            bytes_lost = sum(loss.bytes_lost for loss in losses)
            cores.append(
                CoreTrace(
                    core=core_id,
                    packets=packets,
                    losses=losses,
                    bytes_generated=sum(p.size for p in packets) + bytes_lost,
                    bytes_lost=bytes_lost,
                    encoder_stats=EncoderStats(),
                )
            )
        return PTTrace(
            cores=cores,
            thread_switches=list(self.thread_switches),
            config=config or PTConfig(frontend=self.trace_format),
        )


@dataclass
class _Record:
    """A record whose header survived (whether or not its payload did)."""

    rtype: int
    seq: int
    core: int
    tsc_lo: int
    tsc_hi: int
    payload_len: int
    accepted: bool


@dataclass(frozen=True)
class RecordSpan:
    """Byte extent of one committed record (for the fault injector)."""

    start: int
    end: int
    rtype: int
    seq: int
    core: int


def _parse_record_at(data, sync: int):
    """Try to parse a fully committed record at *sync*.

    Returns ``(span_end, rtype, seq, core, tsc_lo, tsc_hi, payload)`` or
    a string describing why the bytes at *sync* are not a whole valid
    record (the salvage scanner turns that into the right degradation).
    """
    n = len(data)
    hstart = sync + len(_SYNC)
    if hstart + _HEADER.size + _HCRC.size > n:
        return "torn-header"
    header = bytes(data[hstart:hstart + _HEADER.size])
    (stored_hcrc,) = _HCRC.unpack(
        bytes(data[hstart + _HEADER.size:hstart + _HEADER.size + _HCRC.size])
    )
    if _crc(header) != stored_hcrc:
        return "bad-header-crc"
    rtype, seq, core, tsc_lo, tsc_hi, payload_len, payload_crc = _HEADER.unpack(header)
    body_start = hstart + _HEADER.size + _HCRC.size
    trailer_at = body_start + payload_len
    if trailer_at + _TRAILER.size > n:
        return ("torn-payload", rtype, seq, core, tsc_lo, tsc_hi, payload_len)
    commit, trailer_len = _TRAILER.unpack(
        bytes(data[trailer_at:trailer_at + _TRAILER.size])
    )
    if commit != _COMMIT or trailer_len != payload_len:
        return ("uncommitted", rtype, seq, core, tsc_lo, tsc_hi, payload_len)
    payload = bytes(data[body_start:trailer_at])
    if _crc(payload) != payload_crc:
        return ("bad-payload-crc", rtype, seq, core, tsc_lo, tsc_hi, payload_len)
    return (trailer_at + _TRAILER.size, rtype, seq, core, tsc_lo, tsc_hi, payload)


def scan_record_spans(data: bytes) -> List[RecordSpan]:
    """Byte extents of every committed, CRC-valid record in *data*.

    Used by the archive-level fault injector to drop or duplicate whole
    segments; salvage itself re-derives everything independently.
    """
    spans: List[RecordSpan] = []
    pos = 0
    while True:
        sync = data.find(_SYNC, pos)
        if sync < 0:
            return spans
        parsed = _parse_record_at(data, sync)
        if isinstance(parsed, tuple) and not isinstance(parsed[0], str):
            end, rtype, seq, core, _lo, _hi, _payload = parsed
            spans.append(
                RecordSpan(start=sync, end=end, rtype=rtype, seq=seq, core=core)
            )
            pos = end
        else:
            pos = sync + 1


def _load_snapshot(snapshot_path: str, stats: SalvageStats):
    """Read the sidecar; any damage counts as a missing snapshot."""
    try:
        with open(snapshot_path, "rb") as source:
            blob = source.read()
    except OSError:
        stats.metadata_snapshots_missing += 1
        stats.record(
            AnomalyKind.METADATA_SNAPSHOT_MISSING, 0,
            "snapshot sidecar missing: %s" % snapshot_path,
        )
        return None
    detail = None
    if blob[:4] != SNAPSHOT_MAGIC:
        detail = "snapshot has bad magic %r" % blob[:4]
    elif len(blob) < 12:
        detail = "snapshot header truncated"
    else:
        length, crc = struct.unpack("<II", blob[4:12])
        payload = blob[12:12 + length]
        if len(payload) != length:
            detail = "snapshot payload truncated (%d of %d bytes)" % (
                len(payload), length,
            )
        elif _crc(payload) != crc:
            detail = "snapshot payload CRC mismatch"
        else:
            try:
                return deserialize_database(payload)
            except TraceFormatError as error:
                detail = "snapshot unparseable: %s" % error
    stats.metadata_snapshots_missing += 1
    stats.record(AnomalyKind.METADATA_SNAPSHOT_MISSING, 0, detail)
    return None


def _parse_sideband(payload: bytes) -> List[ThreadSwitchRecord]:
    cursor = _Cursor(payload, "sideband")
    (count,) = cursor.unpack("<I")
    switches = []
    for _ in range(count):
        core, tid, tsc = cursor.unpack("<IIQ")
        switches.append(ThreadSwitchRecord(core=core, tid=tid, tsc=tsc))
    if cursor.pos != len(payload):
        raise TraceFormatError("trailing bytes in sideband payload")
    return switches


def _salvage_legacy(data, contents: ArchiveContents) -> None:
    """Best-effort prefix salvage of a flat ``RPT1`` stream."""
    stats = contents.stats
    stats.legacy = True
    stats.sealed = True  # RPT1 has no seal concept; don't flag it.
    entries: List[Tuple[str, object]] = []
    source = io.BytesIO(bytes(data[4:]))
    salvage_point = len(data)
    try:
        for entry in iter_body(source, base_offset=4):
            entries.append(entry)
    except TraceFormatError as error:
        salvage_point = error.entry_offset
        stats.record(
            AnomalyKind.ARCHIVE_MALFORMED, error.offset,
            "legacy stream damaged: %s" % error,
        )
        dropped = len(data) - salvage_point
        stats.bytes_dropped += dropped
        last_tsc = _tsc_span(entries)[1] if entries else 0
        hole = AuxLossRecord(
            start_tsc=last_tsc, end_tsc=last_tsc,
            bytes_lost=dropped, packets_lost=0,
        )
        entries.append(("loss", hole))
        stats.loss_records_synthesized += 1
        stats.loss_bytes_synthesized += hole.bytes_lost
    stats.bytes_salvaged += salvage_point
    stats.segments_total = 1
    if salvage_point > 4 or not stats.events:
        stats.segments_salvaged = 1
    else:
        stats.segments_dropped = 1
    contents.cores[0] = entries


@dataclass(frozen=True)
class ArchiveRecord:
    """One committed record surfaced incrementally by the tail reader.

    ``payload`` depends on the record type: a tagged ``(tag, item)``
    entry list for segments, a :class:`~repro.core.metadata.CodeDump`
    for journal records, a :class:`ThreadSwitchRecord` list for
    sideband, the frontend name string for format records, ``None`` for
    the seal.
    """

    rtype: int
    seq: int
    core: int
    tsc_lo: int
    tsc_hi: int
    payload: object


def read_archive(path, snapshot_path=None, strict: bool = False) -> ArchiveContents:
    """Salvage-read an ``RPT2`` archive (or legacy ``RPT1`` stream).

    Never raises on hostile file *content*: damaged records are dropped,
    logged as :class:`SalvageEvent`\\ s, and -- for segments -- converted
    into synthetic loss records spanning their TSC range so the decode
    pipeline hands the damage to hole recovery.  ``strict=True`` turns
    the first salvage event into an :class:`ArchiveFormatError` instead
    (writer self-checks; never the default).
    """
    path = str(path)
    snapshot_path = (
        str(snapshot_path) if snapshot_path is not None else path + ".meta"
    )
    contents = ArchiveContents(path=path, stats=SalvageStats())
    scanner = _ArchiveScanner(contents, snapshot_path)
    with open(path, "rb") as source:
        scanner.feed(source.read())
    scanner.finish()
    stats = contents.stats
    if strict and stats.events:
        first = stats.events[0]
        raise ArchiveFormatError(
            "archive %s: %s at offset %d (%s)"
            % (path, first.kind.value, first.offset, first.detail),
            offset=first.offset,
        )
    return contents


class _ArchiveScanner:
    """Resumable salvage scanner: the engine under both read modes.

    :func:`read_archive` feeds it the whole file and finishes; the
    :class:`ArchiveTailReader` feeds appended byte chunks as the file
    grows.  While unfinished, an *indeterminate* tail -- a truncated
    header, a payload whose claimed length runs past the current EOF, or
    a trailing sync-prefix byte -- is left **pending** rather than being
    converted into a torn-record salvage event: on a live archive those
    bytes mean "no trailer yet, more data coming", and only
    :meth:`finish` (end of file, for real) applies the batch reader's
    torn-tail degradation.  Everything *determinate* (CRC failures,
    uncommitted trailers, duplicates, unparseable bodies) degrades
    immediately, with byte-for-byte the accounting of a batch read.
    """

    def __init__(self, contents: ArchiveContents, snapshot_path: str):
        self.contents = contents
        self.stats = contents.stats
        self.snapshot_path = snapshot_path
        self._buffer = bytearray()
        self._base = 0  # absolute file offset of _buffer[0]
        self._total = 0  # bytes fed so far
        self._magic_checked = False
        self._legacy = False
        self._finished = False
        self._known: Dict[int, _Record] = {}
        self._segment_entries: Dict[int, Tuple[int, List[Tuple[str, object]]]] = {}
        self._synthesized: List[Tuple[int, AuxLossRecord]] = []  # (core, record)
        self._new: List[ArchiveRecord] = []

    # ------------------------------------------------------------ feeding
    def buffered_bytes(self) -> int:
        """Unconsumed tail bytes held for the next feed (memory bound)."""
        return len(self._buffer)

    def drain_new(self) -> List[ArchiveRecord]:
        """Records accepted since the last drain, in commit order."""
        new, self._new = self._new, []
        return new

    def export_state(self) -> dict:
        """The resumable scan state as a picklable dict (checkpointing).

        Includes the cumulative :class:`ArchiveContents` fields the scan
        has populated so far (stats, journal, sideband, trace format);
        the assembled per-core streams only exist after :meth:`finish`
        and are deliberately absent.  Values are live references --
        callers persist by pickling immediately (deep copy on the way
        out), exactly like ``BatchEventDecoder.export_state``.
        """
        contents = self.contents
        return {
            "buffer": bytes(self._buffer),
            "base": self._base,
            "total": self._total,
            "magic_checked": self._magic_checked,
            "legacy": self._legacy,
            "finished": self._finished,
            "known": self._known,
            "segment_entries": self._segment_entries,
            "synthesized": self._synthesized,
            "new": self._new,
            "stats": contents.stats,
            "thread_switches": contents.thread_switches,
            "journal_dumps": contents.journal_dumps,
            "trace_format": contents.trace_format,
        }

    def restore_state(self, state: dict) -> "_ArchiveScanner":
        """Adopt an :meth:`export_state` payload; feeding then resumes
        byte-for-byte where the exporting scanner stopped."""
        self._buffer = bytearray(state["buffer"])
        self._base = state["base"]
        self._total = state["total"]
        self._magic_checked = state["magic_checked"]
        self._legacy = state["legacy"]
        self._finished = state["finished"]
        self._known = state["known"]
        self._segment_entries = state["segment_entries"]
        self._synthesized = state["synthesized"]
        self._new = state["new"]
        contents = self.contents
        contents.stats = state["stats"]
        self.stats = contents.stats
        contents.thread_switches = state["thread_switches"]
        contents.journal_dumps = state["journal_dumps"]
        contents.trace_format = state["trace_format"]
        return self

    def feed(self, chunk) -> None:
        """Consume appended bytes; scans as far as is determinate."""
        if self._finished:
            raise ValueError("scanner already finished")
        self._buffer += chunk
        self._total += len(chunk)
        if not self._magic_checked:
            if len(self._buffer) < 4:
                return  # magic still growing; wait
            self._check_magic()
        if not self._legacy:
            self._scan(eof=False)

    def finish(self) -> ArchiveContents:
        """Apply end-of-file semantics and assemble the contents.

        After this the cumulative stats, per-core streams, sideband, and
        database equal a batch :func:`read_archive` of the same bytes --
        including salvage-event order (scan events, unsealed, sequence
        gaps, snapshot) and the byte-accounting invariant.
        """
        if self._finished:
            return self.contents
        self._finished = True
        stats = self.stats
        stats.file_size = self._total
        contents = self.contents
        if not self._magic_checked:
            self._check_magic()  # short file: whatever is there is the magic
        if self._legacy:
            _salvage_legacy(bytes(self._buffer), contents)
            self._buffer.clear()
            return contents
        self._scan(eof=True)
        self._buffer.clear()
        if not stats.sealed:
            stats.record(
                AnomalyKind.ARCHIVE_UNSEALED, self._total,
                "archive ends without a seal record (crash or truncation)",
            )
        _detect_sequence_gaps(self._known, stats, self._synthesize_loss)

        # Assemble per-core streams: accepted segments in seq order, then
        # the synthesized losses merged at their TSC positions (stable
        # sort keeps the canonical packet-before-loss tie order within
        # each tick).
        for seq in sorted(self._segment_entries):
            core, entries = self._segment_entries[seq]
            contents.cores.setdefault(core, []).extend(entries)
        for core, hole in self._synthesized:
            contents.cores.setdefault(core, []).append(("loss", hole))
        for core in contents.cores:
            contents.cores[core].sort(
                key=lambda entry: (
                    entry[1].start_tsc if entry[0] == "loss" else entry[1].tsc,
                    entry[0] == "loss",
                )
            )
        contents.thread_switches.sort(key=lambda record: record.tsc)

        snapshot = _load_snapshot(self.snapshot_path, stats)
        if snapshot is not None:
            contents.database = snapshot.with_dumps(contents.journal_dumps)
        return contents

    # ---------------------------------------------------------- internals
    def _check_magic(self) -> None:
        self._magic_checked = True
        magic = bytes(self._buffer[:4])
        if magic == ARCHIVE_MAGIC:
            self.stats.bytes_salvaged += 4
            del self._buffer[:4]
            self._base = 4
        elif magic == LEGACY_MAGIC:
            self._legacy = True
        else:
            self.stats.record(
                AnomalyKind.ARCHIVE_MALFORMED, 0, "bad archive magic %r" % magic
            )
            # Bad magic: the whole prefix rescans as record garbage.

    def _synthesize_loss(self, core: int, tsc_lo: int, tsc_hi: int, lost: int) -> None:
        hole = AuxLossRecord(
            start_tsc=tsc_lo, end_tsc=tsc_hi, bytes_lost=lost, packets_lost=0
        )
        self._synthesized.append((core, hole))
        self.stats.loss_records_synthesized += 1
        self.stats.loss_bytes_synthesized += lost

    def _register(self, rtype, seq, core, tsc_lo, tsc_hi, payload_len, accepted) -> None:
        self._known[seq] = _Record(
            rtype=rtype, seq=seq, core=core, tsc_lo=tsc_lo, tsc_hi=tsc_hi,
            payload_len=payload_len, accepted=accepted,
        )

    def _scan(self, eof: bool) -> None:
        stats = self.stats
        known = self._known
        data = bytes(self._buffer)
        base = self._base
        n = len(data)
        pos = 0
        while pos < n:
            sync = data.find(_SYNC, pos)
            if sync < 0:
                if eof:
                    stats.bytes_dropped += n - pos
                    pos = n
                else:
                    # Garbage so far -- but the final byte could be the
                    # first half of a sync marker still being written.
                    hold = n - 1 if data[n - 1] == _SYNC[0] else n
                    if hold > pos:
                        stats.bytes_dropped += hold - pos
                        pos = hold
                break
            if sync > pos:
                stats.bytes_dropped += sync - pos
                pos = sync
            parsed = _parse_record_at(data, sync)
            if parsed == "torn-header":
                if not eof:
                    break  # header still being written: pending
                stats.record(
                    AnomalyKind.SEGMENT_TORN, base + sync,
                    "record header truncated at EOF",
                )
                stats.bytes_dropped += n - sync
                pos = n
                break
            if parsed == "bad-header-crc":
                # Either a damaged header or payload bytes that happen to
                # contain the sync pattern; flag only the plausible headers.
                if data[sync + 2] in _KNOWN_TYPES:
                    stats.record(
                        AnomalyKind.ARCHIVE_MALFORMED, base + sync,
                        "record header CRC mismatch",
                    )
                stats.bytes_dropped += 1
                pos = sync + 1
                continue
            if isinstance(parsed[0], str):
                why, rtype, seq, core, tsc_lo, tsc_hi, payload_len = parsed
                if why == "torn-payload" and not eof:
                    break  # payload still being written: pending
                if seq not in known:
                    self._register(
                        rtype, seq, core, tsc_lo, tsc_hi, payload_len, False
                    )
                    if rtype == REC_SEGMENT:
                        stats.segments_total += 1
                        stats.segments_dropped += 1
                        self._synthesize_loss(core, tsc_lo, tsc_hi, payload_len)
                    elif rtype == REC_CODE_DUMP:
                        stats.metadata_dumps_dropped += 1
                if why == "torn-payload":
                    stats.record(
                        AnomalyKind.SEGMENT_TORN, base + sync,
                        "seq %d payload runs past EOF (%d bytes claimed)"
                        % (seq, payload_len),
                        seq=seq, core=core,
                    )
                    stats.bytes_dropped += n - sync
                    pos = n
                    break
                if why == "uncommitted":
                    stats.record(
                        AnomalyKind.SEGMENT_TORN, base + sync,
                        "seq %d never committed (torn trailer)" % seq,
                        seq=seq, core=core,
                    )
                    # Framing up to the payload is accounted here; the
                    # untrusted payload region is rescanned for later records
                    # and lands in the dropped-garbage account.
                    stats.bytes_dropped += len(_SYNC) + _HEADER.size + _HCRC.size
                    pos = sync + len(_SYNC) + _HEADER.size + _HCRC.size
                    continue
                # bad-payload-crc: committed record whose payload rotted.
                stats.record(
                    AnomalyKind.SEGMENT_CRC_MISMATCH, base + sync,
                    "seq %d payload CRC mismatch (%d bytes)" % (seq, payload_len),
                    seq=seq, core=core,
                )
                stats.bytes_dropped += RECORD_OVERHEAD
                stats.bytes_converted_to_loss += payload_len
                pos = sync + len(_SYNC) + _HEADER.size + _HCRC.size + payload_len + _TRAILER.size
                continue

            end, rtype, seq, core, tsc_lo, tsc_hi, payload = parsed
            extent = end - sync
            if seq in known:
                stats.sequence_duplicates += 1
                stats.record(
                    AnomalyKind.SEGMENT_DUPLICATE, base + sync,
                    "seq %d already consumed; duplicate dropped" % seq,
                    seq=seq, core=core,
                )
                if rtype == REC_SEGMENT:
                    stats.segments_total += 1
                    stats.segments_dropped += 1
                stats.bytes_dropped += extent
                pos = end
                continue
            if rtype == REC_SEGMENT:
                stats.segments_total += 1
                try:
                    entries = list(
                        iter_body(
                            io.BytesIO(payload),
                            base_offset=base + sync + len(_SYNC) + _HEADER.size + _HCRC.size,
                        )
                    )
                except TraceFormatError as error:
                    self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), False)
                    stats.segments_dropped += 1
                    stats.record(
                        AnomalyKind.ARCHIVE_MALFORMED, base + sync,
                        "seq %d body unparseable despite valid CRC: %s" % (seq, error),
                        seq=seq, core=core,
                    )
                    self._synthesize_loss(core, tsc_lo, tsc_hi, len(payload))
                    stats.bytes_dropped += RECORD_OVERHEAD
                    stats.bytes_converted_to_loss += len(payload)
                    pos = end
                    continue
                self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), True)
                stats.segments_salvaged += 1
                self._segment_entries[seq] = (core, entries)
                stats.bytes_salvaged += extent
                self._new.append(ArchiveRecord(rtype, seq, core, tsc_lo, tsc_hi, entries))
            elif rtype == REC_CODE_DUMP:
                try:
                    dump = deserialize_code_dump(payload)
                except TraceFormatError as error:
                    self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), False)
                    stats.metadata_dumps_dropped += 1
                    stats.record(
                        AnomalyKind.ARCHIVE_MALFORMED, base + sync,
                        "seq %d code dump unparseable: %s" % (seq, error),
                        seq=seq,
                    )
                    stats.bytes_dropped += extent
                    pos = end
                    continue
                self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), True)
                stats.metadata_dumps_salvaged += 1
                self.contents.journal_dumps.append(dump)
                stats.bytes_salvaged += extent
                self._new.append(ArchiveRecord(rtype, seq, core, tsc_lo, tsc_hi, dump))
            elif rtype == REC_SIDEBAND:
                try:
                    switches = _parse_sideband(payload)
                except TraceFormatError as error:
                    self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), False)
                    stats.record(
                        AnomalyKind.ARCHIVE_MALFORMED, base + sync,
                        "seq %d sideband unparseable: %s" % (seq, error),
                        seq=seq,
                    )
                    stats.bytes_dropped += extent
                    pos = end
                    continue
                self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), True)
                self.contents.thread_switches.extend(switches)
                stats.bytes_salvaged += extent
                self._new.append(ArchiveRecord(rtype, seq, core, tsc_lo, tsc_hi, switches))
            elif rtype == REC_FORMAT:
                try:
                    name = payload.decode("utf-8")
                except UnicodeDecodeError:
                    self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), False)
                    stats.record(
                        AnomalyKind.ARCHIVE_MALFORMED, base + sync,
                        "seq %d format record payload is not utf-8" % seq,
                        seq=seq,
                    )
                    stats.bytes_dropped += extent
                    pos = end
                    continue
                self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), True)
                self.contents.trace_format = name
                try:
                    # Registers the named frontend's entry codecs (an
                    # import side effect), so the segment bodies that
                    # follow parse.  Unknown name: segments with foreign
                    # tags degrade into synthetic loss records below.
                    from ..tracesource import get_frontend

                    get_frontend(name)
                except KeyError:
                    stats.record(
                        AnomalyKind.ARCHIVE_MALFORMED, base + sync,
                        "seq %d names unknown trace format %r" % (seq, name),
                        seq=seq,
                    )
                stats.bytes_salvaged += extent
                self._new.append(ArchiveRecord(rtype, seq, core, tsc_lo, tsc_hi, name))
            elif rtype == REC_SEAL:
                self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), True)
                stats.sealed = True
                stats.bytes_salvaged += extent
                self._new.append(ArchiveRecord(rtype, seq, core, tsc_lo, tsc_hi, None))
            else:
                self._register(rtype, seq, core, tsc_lo, tsc_hi, len(payload), False)
                stats.record(
                    AnomalyKind.ARCHIVE_MALFORMED, base + sync,
                    "seq %d has unknown record type 0x%02x" % (seq, rtype),
                    seq=seq,
                )
                stats.bytes_dropped += extent
            pos = end
        # Compact: everything before *pos* has a final disposition.
        if pos:
            del self._buffer[:pos]
            self._base += pos


class ArchiveTailReader:
    """Tail-follow a growing ``RPT2`` archive, record by record.

    ``poll()`` reads whatever the writer appended since the last poll
    and returns the newly *committed* records; an in-flight record at
    the end of the file stays pending (never converted to loss) until
    either its commit trailer lands or :meth:`finalize` declares true
    end-of-file.  Memory stays bounded by the undecoded tail: consumed
    bytes are discarded as soon as their disposition is final.

    If the file *shrinks* or is replaced under the reader (a salvage
    truncation fault, not an append), the incremental state no longer
    matches the bytes on disk; the reader flags itself ``dirty`` and
    :meth:`finalize` falls back to a fresh batch read of the final file,
    so the result is still exactly :func:`read_archive`'s.
    """

    def __init__(self, path, snapshot_path=None):
        self.path = str(path)
        self.snapshot_path = (
            str(snapshot_path) if snapshot_path is not None else self.path + ".meta"
        )
        self.contents = ArchiveContents(path=self.path, stats=SalvageStats())
        self._scanner = _ArchiveScanner(self.contents, self.snapshot_path)
        self._offset = 0
        self._ino: Optional[int] = None
        self.dirty = False
        self.finished = False
        self.released = False
        self.records_read = 0
        self.segments_read = 0
        #: Optional per-poll read cap (backpressure: a huge append is
        #: consumed across several polls instead of ballooning the
        #: scanner buffer in one step).  ``None``: read everything.
        self.max_poll_bytes: Optional[int] = None
        #: Optional fault-injection hooks (``repro.pt.faults``): an
        #: object with ``before_read(reader)`` (may raise ``OSError`` or
        #: sleep, modelling transient I/O faults and slow media) and
        #: ``read_limit(available)`` (may shorten one read, modelling
        #: partial reads).  Production leaves this ``None``.
        self.io_hooks = None

    # ---------------------------------------------------------------- API
    @property
    def stats(self) -> SalvageStats:
        return self.contents.stats

    @property
    def sealed(self) -> bool:
        return self.contents.stats.sealed

    @property
    def offset(self) -> int:
        """Absolute file offset of the next unread byte (checkpointing)."""
        return self._offset

    def buffered_bytes(self) -> int:
        return self._scanner.buffered_bytes()

    def poll(self) -> List[ArchiveRecord]:
        """Consume newly appended bytes; returns new committed records.

        Returns an empty list when nothing new committed (including when
        the file does not exist yet).  Never raises on file *content*;
        a transient I/O failure (``EIO``, permission revoked, a fault
        hook firing) propagates as ``OSError`` with the reader state
        untouched -- nothing was consumed, so the caller may simply
        retry the poll later.
        """
        if self.finished or self.released:
            return []
        hooks = self.io_hooks
        if hooks is not None:
            hooks.before_read(self)  # may raise OSError: transient fault
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            return []  # no file yet: the writer has not started
        if self._ino is None:
            self._ino = stat.st_ino
        elif stat.st_ino not in (0, self._ino):
            # A different inode under the same name: the file was
            # replaced mid-poll, so the consumed prefix no longer
            # matches the bytes on disk.
            self.dirty = True
            return []
        if stat.st_size < self._offset:
            self.dirty = True  # file shrank: not an append-only writer
            return []
        available = stat.st_size - self._offset
        limit = available
        if self.max_poll_bytes is not None:
            limit = min(limit, self.max_poll_bytes)
        if hooks is not None and limit:
            hook_limit = hooks.read_limit(limit)
            if hook_limit is not None:
                limit = max(0, min(limit, hook_limit))
        chunk = b""
        if limit:
            with open(self.path, "rb") as source:
                source.seek(self._offset)
                chunk = source.read(limit)
        if chunk:
            self._offset += len(chunk)
            self._scanner.feed(chunk)
        new = self._scanner.drain_new()
        self.records_read += len(new)
        self.segments_read += sum(
            1 for record in new if record.rtype == REC_SEGMENT
        )
        return new

    def release(self) -> None:
        """Shed all buffered scan state (backpressure).

        The reader stops consuming (``poll`` returns nothing) and
        :meth:`finalize` degrades to a fresh batch read of the final
        file -- the same degrade-to-replay shape as a dirty reader, but
        triggered by memory pressure instead of file damage.
        """
        if self.released or self.finished:
            return
        self.released = True
        self.dirty = True
        self.contents = ArchiveContents(path=self.path, stats=SalvageStats())
        self._scanner = _ArchiveScanner(self.contents, self.snapshot_path)

    def finalize(self) -> ArchiveContents:
        """Declare end-of-file and return the assembled contents.

        Equals :func:`read_archive` of the file's final bytes: directly
        (fresh batch read) when the reader went dirty, via the resumable
        scanner's end-of-file pass otherwise.  Fault-injection hooks
        and per-poll read caps are lifted first: finalize is the
        end-of-stream barrier, and it must drain whatever remains.
        """
        if self.finished:
            return self.contents
        self.io_hooks = None
        self.max_poll_bytes = None
        while not self.dirty:
            before = self._offset
            self.poll()
            if self._offset == before:
                break
        self.finished = True
        if self.dirty:
            self.contents = read_archive(
                self.path, snapshot_path=self.snapshot_path
            )
            return self.contents
        return self._scanner.finish()

    # ------------------------------------------------------ checkpointing
    def export_state(self) -> dict:
        """The tail-follow position and scan state, picklable."""
        return {
            "offset": self._offset,
            "ino": self._ino,
            "dirty": self.dirty,
            "finished": self.finished,
            "released": self.released,
            "records_read": self.records_read,
            "segments_read": self.segments_read,
            "scanner": self._scanner.export_state(),
        }

    def restore_state(self, state: dict) -> "ArchiveTailReader":
        """Adopt an :meth:`export_state` payload: the next ``poll``
        resumes reading at the checkpointed offset.

        The inode is deliberately re-learned from disk rather than
        restored: across a supervisor restart the archive may legally
        have been recreated by a new writer pid, and staleness is the
        checkpoint fingerprint's job, not the inode's.
        """
        self._offset = state["offset"]
        self._ino = None
        self.dirty = state["dirty"]
        self.finished = state["finished"]
        self.released = state["released"]
        self.records_read = state["records_read"]
        self.segments_read = state["segments_read"]
        self._scanner.restore_state(state["scanner"])
        return self


def _detect_sequence_gaps(known, stats: SalvageStats, synthesize_loss) -> None:
    """Missing sequence numbers -> one synthetic loss per missing run."""
    if not known:
        return
    top = max(known)
    missing_runs: List[Tuple[int, int]] = []
    run_start = None
    for seq in range(top + 1):
        if seq not in known:
            if run_start is None:
                run_start = seq
        elif run_start is not None:
            missing_runs.append((run_start, seq - 1))
            run_start = None
    if run_start is not None:  # pragma: no cover - top is always known
        missing_runs.append((run_start, top))
    if not missing_runs:
        return
    accepted_segments = [
        record for record in known.values()
        if record.rtype == REC_SEGMENT and record.accepted
    ]
    mean_payload = (
        sum(record.payload_len for record in accepted_segments)
        // len(accepted_segments)
        if accepted_segments
        else 0
    )
    for first, last in missing_runs:
        prev = max((s for s in known if s < first), default=None)
        succ = min((s for s in known if s > last), default=None)
        tsc_lo = known[prev].tsc_hi if prev is not None else 0
        tsc_hi = known[succ].tsc_lo if succ is not None else tsc_lo
        if tsc_hi < tsc_lo:
            tsc_lo, tsc_hi = tsc_hi, tsc_lo
        core = 0
        for neighbour in (succ, prev):
            if neighbour is not None and known[neighbour].rtype == REC_SEGMENT:
                core = known[neighbour].core
                break
        width = last - first + 1
        stats.sequence_gaps += 1
        stats.record(
            AnomalyKind.SEGMENT_GAP, 0,
            "sequence numbers %d..%d missing (%d record%s)"
            % (first, last, width, "" if width == 1 else "s"),
            seq=first, core=core,
        )
        synthesize_loss(core, tsc_lo, tsc_hi, mean_payload * width)
