"""libipt-equivalent packet decoder: packets -> native control flow.

Given one *thread's* TSC-ordered stream of packets and loss records, plus
the machine-code metadata (a code database providing template lookup and
compiled-code lookup), the decoder produces the native-level flow:

* :class:`InterpDispatch` -- an interpreter template was entered (one per
  executed bytecode; conditional templates carry their TNT outcome);
* :class:`InterpReturnStub` -- compiled code returned into the interpreter;
* :class:`JitSpan` -- a maximal walk through compiled machine code,
  recorded as the sequence of executed instruction addresses (paper
  Figure 3(d)); the walk follows direct jumps/calls statically, consumes
  one TNT bit per ``jcc``, and stops at indirect branches awaiting the
  next TIP, exactly like libipt;
* :class:`TraceLoss` -- a buffer-overflow hole (segmentation point);
* :class:`DecodeAnomaly` -- diagnostics (orphan TNT bits after a loss,
  unknown IPs, desynchronised walks).

The code database must provide::

    template_op_at(ip)        -> Op or None (which template contains ip)
    op_is_conditional(op)     -> bool
    is_return_stub(ip)        -> bool
    in_code_cache(ip)         -> bool
    native_instruction_at(ip) -> MachineInstruction or None

which :class:`repro.core.metadata.CodeDatabase` implements from the
exported metadata only (never from runtime-private state).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..jvm.machine import MIKind
from .packets import (
    AuxLossRecord,
    FUPPacket,
    Packet,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
)

#: Safety bound on machine instructions walked without consuming a packet.
MAX_WALK = 2_000_000


@dataclass
class InterpDispatch:
    """One interpreted bytecode: a TIP into template space."""

    tsc: int
    op: object  # repro.jvm.opcodes.Op
    taken: Optional[bool] = None  # TNT outcome for conditional templates


@dataclass
class InterpReturnStub:
    """Compiled code returned to the interpreter (c2i stub TIP)."""

    tsc: int


@dataclass
class JitSpan:
    """A contiguous walk through compiled code (executed MI addresses)."""

    tsc: int
    addresses: List[int] = field(default_factory=list)


@dataclass
class TraceLoss:
    """A hole: data between ``start_tsc`` and ``end_tsc`` was dropped."""

    start_tsc: int
    end_tsc: int
    bytes_lost: int


@dataclass
class DecodeAnomaly:
    """Something unexpected in the stream (kept for diagnostics)."""

    tsc: int
    reason: str


DecodedItem = object


@dataclass
class DecodeStats:
    packets: int = 0
    tips: int = 0
    tnt_bits: int = 0
    losses: int = 0
    anomalies: int = 0
    walked_instructions: int = 0


class PTDecoder:
    """Decodes one thread's packet stream against a code database.

    A decoder is single-use: one :meth:`decode` call per instance.  When a
    :class:`~repro.core.metrics.MetricsRegistry` is supplied, the decode
    stats are published under ``decode.*`` counters for *tid* when the
    stream has been consumed.
    """

    def __init__(self, database, metrics=None, tid: Optional[int] = None):
        self.database = database
        self.metrics = metrics
        self.tid = tid
        self.stats = DecodeStats()
        self._items: List[DecodedItem] = []
        self._bits = deque()
        # Pending interpreted conditional waiting for its TNT bit.
        self._pending_cond: Optional[InterpDispatch] = None
        # Suspended machine walk: (span, next_address) waiting for TNT bits.
        self._walk: Optional[Tuple[JitSpan, int]] = None
        # Between a loss record and the next TIP the stream has no anchor:
        # TNT bits arriving there belong to branches whose context was
        # dropped and must not bind to later conditionals.
        self._post_loss = False

    # -------------------------------------------------------------------- API
    def decode(
        self, stream: Sequence[Tuple[str, object]]
    ) -> List[DecodedItem]:
        """Decode a merged ``("packet"|"loss", item)`` stream (one thread)."""
        for tag, item in stream:
            if tag == "loss":
                self._on_loss(item)
            else:
                self._on_packet(item)
        self._finish_pending()
        self._publish_metrics()
        return self._items

    # --------------------------------------------------------------- handlers
    def _on_loss(self, loss: AuxLossRecord) -> None:
        self.stats.losses += 1
        self._abandon("data loss")
        self._bits.clear()
        self._post_loss = True
        self._items.append(
            TraceLoss(
                start_tsc=loss.start_tsc,
                end_tsc=loss.end_tsc,
                bytes_lost=loss.bytes_lost,
            )
        )

    def _on_packet(self, packet: Packet) -> None:
        self.stats.packets += 1
        if isinstance(packet, TSCPacket):
            return
        if isinstance(packet, TNTPacket):
            self.stats.tnt_bits += len(packet.bits)
            if (
                self._post_loss
                and self._pending_cond is None
                and self._walk is None
            ):
                # Orphan bits: their branches were dropped with the loss;
                # buffering them would misbind the next conditional.
                self._note(packet.tsc, "orphan TNT bits after loss")
                return
            self._bits.extend(packet.bits)
            self._drain_bits(packet.tsc)
            return
        if isinstance(packet, TIPPacket):
            self.stats.tips += 1
            self._post_loss = False
            self._on_tip(packet)
            return
        if isinstance(packet, FUPPacket):
            # Asynchronous event: the current flow is interrupted; control
            # resumes at the next TIP.
            self._abandon("fup")
            return
        if isinstance(packet, (PGEPacket, PGDPacket)):
            # Benign tracing pauses (e.g. GC) do not move control; the
            # suspended walk stays valid.
            return
        raise TypeError("unknown packet %r" % (packet,))  # pragma: no cover

    def _on_tip(self, packet: TIPPacket) -> None:
        target = packet.target
        # A TIP while a conditional still awaits its bit, or while a walk
        # awaits TNTs, means the stream is inconsistent (post-loss).
        if self._pending_cond is not None:
            # The bit never arrived (lost): emit with unknown outcome.
            self._note(packet.tsc, "conditional without TNT bit")
            self._items.append(self._pending_cond)
            self._pending_cond = None
        if self._walk is not None:
            self._note(packet.tsc, "walk abandoned by TIP")
            self._walk = None
        database = self.database
        if database.is_return_stub(target):
            self._items.append(InterpReturnStub(tsc=packet.tsc))
            return
        op = database.template_op_at(target)
        if op is not None:
            dispatch = InterpDispatch(tsc=packet.tsc, op=op)
            if database.op_is_conditional(op):
                if self._bits:
                    dispatch.taken = self._bits.popleft()
                    self._items.append(dispatch)
                else:
                    self._pending_cond = dispatch
            else:
                self._items.append(dispatch)
            return
        if database.in_code_cache(target):
            span = JitSpan(tsc=packet.tsc)
            self._items.append(span)
            self._run_walk(span, target, packet.tsc)
            return
        self._note(packet.tsc, "TIP to unknown address 0x%x" % target)

    # ------------------------------------------------------------------- walk
    def _run_walk(self, span: JitSpan, address: int, tsc: int) -> None:
        """Walk compiled code from *address* until input is exhausted."""
        database = self.database
        walked = 0
        while True:
            if walked > MAX_WALK:
                self._note(tsc, "walk budget exceeded")
                return
            mi = database.native_instruction_at(address, tsc)
            if mi is None:
                self._note(tsc, "walk desynchronised at 0x%x" % address)
                return
            span.addresses.append(address)
            self.stats.walked_instructions += 1
            walked += 1
            kind = mi.kind
            if kind is MIKind.OTHER:
                address = mi.end
            elif kind in (MIKind.JMP_DIRECT, MIKind.CALL_DIRECT):
                address = mi.target
            elif kind is MIKind.COND_BRANCH:
                if not self._bits:
                    # Starve: suspend until more TNT bits arrive.  The
                    # branch address is re-visited on resume.
                    span.addresses.pop()
                    self.stats.walked_instructions -= 1
                    self._walk = (span, address)
                    return
                taken = self._bits.popleft()
                address = mi.target if taken else mi.end
            else:
                # Indirect branch / return: the next TIP carries the target.
                return

    def _drain_bits(self, tsc: int) -> None:
        if self._pending_cond is not None and self._bits:
            self._pending_cond.taken = self._bits.popleft()
            self._items.append(self._pending_cond)
            self._pending_cond = None
        if self._walk is not None and self._bits:
            span, address = self._walk
            self._walk = None
            self._run_walk(span, address, tsc)

    # ---------------------------------------------------------------- cleanup
    def _abandon(self, why: str) -> None:
        if self._pending_cond is not None:
            # Emit with unknown outcome rather than dropping the dispatch.
            self._items.append(self._pending_cond)
            self._pending_cond = None
        self._walk = None

    def _finish_pending(self) -> None:
        self._abandon("end of stream")

    def _note(self, tsc: int, reason: str) -> None:
        self.stats.anomalies += 1
        self._items.append(DecodeAnomaly(tsc=tsc, reason=reason))

    # ---------------------------------------------------------------- metrics
    def _publish_metrics(self) -> None:
        if self.metrics is None:
            return
        stats = self.stats
        for name, value in (
            ("decode.packets", stats.packets),
            ("decode.tips", stats.tips),
            ("decode.tnt_bits", stats.tnt_bits),
            ("decode.losses", stats.losses),
            ("decode.anomalies", stats.anomalies),
            ("decode.walked_instructions", stats.walked_instructions),
        ):
            if value:
                self.metrics.incr(name, value, tid=self.tid)
