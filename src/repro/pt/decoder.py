"""Intel PT decoder: compatibility surface over the trace-source engine.

The decode core used to live here; it is now the format-agnostic engine
in :mod:`repro.tracesource.engine`, which dispatches on the normalised
event bases (:mod:`repro.tracesource.events`) that PT packets subclass.
This module keeps the historical names importable -- ``PTDecoder`` /
``PTBatchDecoder`` and the whole anomaly/degradation vocabulary -- so
the PT frontend remains the reference implementation of the trace-source
interface without forking the engine.

See the engine module for the decode semantics, the robustness contract,
and the code-database protocol.
"""

from __future__ import annotations

from ..tracesource.engine import (  # noqa: F401  (compatibility re-exports)
    BLOCK_CHAIN,
    BLOCK_COND,
    BLOCK_END,
    BLOCK_EPOCH,
    BLOCK_UNKNOWN,
    LIFT_STALE,
    MAX_WALK,
    TARGET_CODE,
    TARGET_STUB,
    TARGET_TEMPLATE,
    TARGET_UNKNOWN,
    AnomalyKind,
    BatchEventDecoder,
    DecodeAnomaly,
    DecodedItem,
    DecodeStats,
    DegradationPolicy,
    EventDecoder,
    InterpDispatch,
    InterpReturnStub,
    JitSpan,
    TraceLoss,
)

#: The PT frontend's decoders *are* the shared engines: PT packets
#: subclass the event bases, so no PT-specific decode logic remains.
PTDecoder = EventDecoder
PTBatchDecoder = BatchEventDecoder
