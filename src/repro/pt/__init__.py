"""Simulated Intel PT substrate: packets, encoder, lossy ring buffer, decoder."""

from .buffer import BufferResult, RingBuffer, RingBufferConfig, interleave_with_losses
from .decoder import (
    AnomalyKind,
    DecodeAnomaly,
    DecodeStats,
    DegradationPolicy,
    InterpDispatch,
    InterpReturnStub,
    JitSpan,
    PTDecoder,
    TraceLoss,
)
from .encoder import EncoderConfig, EncoderStats, PTEncoder, encode_core
from .faults import FaultInjector, FaultKind, InjectedFault, STREAM_FAULT_KINDS
from .packets import (
    AuxLossRecord,
    FUPPacket,
    Packet,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
    compressed_tip_size,
)
from .perf import CoreTrace, PTConfig, PTTrace, collect, filter_events

__all__ = [
    "BufferResult",
    "RingBuffer",
    "RingBufferConfig",
    "interleave_with_losses",
    "AnomalyKind",
    "DecodeAnomaly",
    "DecodeStats",
    "DegradationPolicy",
    "FaultInjector",
    "FaultKind",
    "InjectedFault",
    "STREAM_FAULT_KINDS",
    "InterpDispatch",
    "InterpReturnStub",
    "JitSpan",
    "PTDecoder",
    "TraceLoss",
    "EncoderConfig",
    "EncoderStats",
    "PTEncoder",
    "encode_core",
    "AuxLossRecord",
    "FUPPacket",
    "Packet",
    "PGDPacket",
    "PGEPacket",
    "TIPPacket",
    "TNTPacket",
    "TSCPacket",
    "compressed_tip_size",
    "CoreTrace",
    "PTConfig",
    "PTTrace",
    "collect",
    "filter_events",
]
