"""Simulated Intel PT substrate: packets, encoder, lossy ring buffer, decoder."""

from .buffer import BufferResult, RingBuffer, RingBufferConfig, interleave_with_losses
from .decoder import (
    DecodeAnomaly,
    DecodeStats,
    InterpDispatch,
    InterpReturnStub,
    JitSpan,
    PTDecoder,
    TraceLoss,
)
from .encoder import EncoderConfig, EncoderStats, PTEncoder, encode_core
from .packets import (
    AuxLossRecord,
    FUPPacket,
    Packet,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
    compressed_tip_size,
)
from .perf import CoreTrace, PTConfig, PTTrace, collect, filter_events

__all__ = [
    "BufferResult",
    "RingBuffer",
    "RingBufferConfig",
    "interleave_with_losses",
    "DecodeAnomaly",
    "DecodeStats",
    "InterpDispatch",
    "InterpReturnStub",
    "JitSpan",
    "PTDecoder",
    "TraceLoss",
    "EncoderConfig",
    "EncoderStats",
    "PTEncoder",
    "encode_core",
    "AuxLossRecord",
    "FUPPacket",
    "Packet",
    "PGDPacket",
    "PGEPacket",
    "TIPPacket",
    "TNTPacket",
    "TSCPacket",
    "compressed_tip_size",
    "CoreTrace",
    "PTConfig",
    "PTTrace",
    "collect",
    "filter_events",
]
