"""Simulated Intel PT substrate: packets, encoder, lossy ring buffer, decoder.

The decode core itself lives in :mod:`repro.tracesource`; this package is
the reference *frontend* -- the PT packet model, its encoder, and the
collection/archive stack -- registered under the name ``"pt"`` in the
trace-source registry.
"""

from ..tracesource import ProjectionModel, TraceFrontend, register_frontend
from .buffer import BufferResult, RingBuffer, RingBufferConfig, interleave_with_losses
from .decoder import (
    AnomalyKind,
    DecodeAnomaly,
    DecodeStats,
    DegradationPolicy,
    InterpDispatch,
    InterpReturnStub,
    JitSpan,
    PTBatchDecoder,
    PTDecoder,
    TraceLoss,
)
from .archive import (
    ArchiveContents,
    ArchiveFormatError,
    ArchiveWriteReport,
    ArchiveWriter,
    SalvageEvent,
    SalvageStats,
    deserialize_code_dump,
    deserialize_database,
    read_archive,
    scan_record_spans,
    serialize_code_dump,
    serialize_database,
    write_archive,
)
from .encoder import EncoderConfig, EncoderStats, PTEncoder, encode_core
from .faults import (
    ARCHIVE_FAULT_KINDS,
    DISK_FAULT_KINDS,
    FaultInjector,
    FaultKind,
    InjectedFault,
    STREAM_FAULT_KINDS,
)
from .packets import (
    AuxLossRecord,
    FUPPacket,
    Packet,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
    compressed_tip_size,
)
from .perf import (
    CoreTrace,
    PTConfig,
    PTTrace,
    collect,
    collect_to_archive,
    filter_events,
)

#: Intel PT's static projection: per-branch TNT bits (short TNT is one
#: byte carrying up to 6 outcomes, flushed before any other packet) and
#: full-target TIP packets with upper-byte IP compression (3/5/9 bytes;
#: control alternating between the template area and the JIT code cache
#: mixes the 16-bit and 32-bit update forms, so 4 is typical).  No
#: periodic full-address resync -- PT recovers at PGE/sync boundaries.
PT_PROJECTION = ProjectionModel(
    name="pt",
    version=1,
    outcome_batch_bits=6,
    outcome_header_bytes=1,
    outcome_bits_per_payload_byte=0,
    target_bytes_min=3,
    target_bytes_typical=4,
    target_bytes_max=9,
    sync_interval=None,
    sync_bytes=0,
    time_bytes=8,
    async_bytes=9,
)

#: The Intel PT frontend's registry entry (:mod:`repro.tracesource`).
PT_FRONTEND = register_frontend(
    TraceFrontend(
        name="pt",
        make_encoder=PTEncoder,
        encode_core=encode_core,
        object_decoder=PTDecoder,
        batch_decoder=PTBatchDecoder,
        encoder_config_type=EncoderConfig,
        projection_model=PT_PROJECTION,
    )
)

__all__ = [
    "PT_FRONTEND",
    "PT_PROJECTION",
    "PTBatchDecoder",
    "BufferResult",
    "RingBuffer",
    "RingBufferConfig",
    "interleave_with_losses",
    "AnomalyKind",
    "ArchiveContents",
    "ArchiveFormatError",
    "ArchiveWriteReport",
    "ArchiveWriter",
    "SalvageEvent",
    "SalvageStats",
    "deserialize_code_dump",
    "deserialize_database",
    "read_archive",
    "scan_record_spans",
    "serialize_code_dump",
    "serialize_database",
    "write_archive",
    "DecodeAnomaly",
    "DecodeStats",
    "DegradationPolicy",
    "FaultInjector",
    "FaultKind",
    "InjectedFault",
    "STREAM_FAULT_KINDS",
    "ARCHIVE_FAULT_KINDS",
    "DISK_FAULT_KINDS",
    "InterpDispatch",
    "InterpReturnStub",
    "JitSpan",
    "PTDecoder",
    "TraceLoss",
    "EncoderConfig",
    "EncoderStats",
    "PTEncoder",
    "encode_core",
    "AuxLossRecord",
    "FUPPacket",
    "Packet",
    "PGDPacket",
    "PGEPacket",
    "TIPPacket",
    "TNTPacket",
    "TSCPacket",
    "compressed_tip_size",
    "CoreTrace",
    "PTConfig",
    "PTTrace",
    "collect",
    "collect_to_archive",
    "filter_events",
]
