"""Binary serialisation of PT packet streams.

The online collector "periodically dumps trace packets to files"
(Section 3); this module defines the on-disk format: a compact binary
encoding with one header byte per packet, variable-length payloads
matching each packet's compressed size, and framed aux-loss records.
:func:`write_stream` / :func:`read_stream` round-trip a merged
``("packet" | "loss", item)`` stream, so a collected trace can be stored,
shipped, and decoded later exactly as perf data files are.

Format (little-endian):

====  =======================================================
byte  meaning
====  =======================================================
0x01  PGE   -- u64 tsc, u64 ip
0x02  PGD   -- u64 tsc, u64 ip
0x03  TNT   -- u64 tsc, u8 count, u8 bitfield
0x04  TIP   -- u64 tsc, u8 compressed_size, u64 target
0x05  FUP   -- u64 tsc, u64 ip
0x06  TSC   -- u64 tsc
0x07  LOSS  -- u64 start, u64 end, u64 bytes, u32 packets
====  =======================================================

Tags 0x10 and above are reserved for extension codecs registered by
other trace-source frontends via :func:`register_entry_codec`
(:mod:`repro.etrace.serialize` registers the E-Trace packet tags when
the ``repro.etrace`` package is imported).

The logical ``compressed_size`` is stored so byte accounting survives the
round trip (the file stores full IPs for simplicity; real PT would store
the compressed form -- the *semantics* is identical).  Valid values are
the ones :func:`repro.pt.packets.compressed_tip_size` can produce (one
header byte plus 2, 4, or 8 target bytes); anything else is rejected on
both read and write, because a bogus size silently corrupts every
downstream byte account (loss fractions, buffer occupancy, Table 2).

Two reading surfaces:

* :func:`read_stream` -- parse a whole ``RPT1`` stream into a list;
* :func:`iter_stream` / :func:`iter_body` -- generators that yield one
  entry at a time, so multi-GB files never need the full packet list
  resident.  The archive layer (:mod:`repro.pt.archive`) parses each
  segment payload with :func:`iter_body`.

Every :class:`TraceFormatError` carries the file offset of the failure
(``offset`` attribute, also in the message) and the offset at which the
failing entry started (``entry_offset``) -- the salvage reader uses the
latter to keep everything before the damage.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Callable, Dict, Iterable, Iterator, List, Tuple

from .packets import (
    AuxLossRecord,
    FUPPacket,
    Packet,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
)

_TAG_PGE = 0x01
_TAG_PGD = 0x02
_TAG_TNT = 0x03
_TAG_TIP = 0x04
_TAG_FUP = 0x05
_TAG_TSC = 0x06
_TAG_LOSS = 0x07

_BUILTIN_TAGS = frozenset(range(_TAG_PGE, _TAG_LOSS + 1))

_MAGIC = b"RPT1"

#: Encoded TIP sizes IP compression can produce: header + 2, 4, or 8.
VALID_TIP_SIZES = (3, 5, 9)

# --------------------------------------------------------- extension codecs
# Other frontends (repro.etrace) serialise their packet classes through
# the same entry stream by registering a codec per class.  Codecs are
# looked up by exact class on write (before the PT isinstance chain, so
# registration always wins) and by tag on read; an unregistered tag is
# still a TraceFormatError, which is how archive salvage degrades when a
# format record was lost.
_EXTENSION_PACK: Dict[type, Tuple[int, Callable[[object], bytes]]] = {}
_EXTENSION_UNPACK: Dict[int, Callable] = {}


def register_entry_codec(
    tag: int,
    cls: type,
    pack: Callable[[object], bytes],
    unpack: Callable,
) -> None:
    """Register a packet codec for :func:`write_entry` / :func:`iter_body`.

    ``pack(item)`` returns the payload bytes (everything after the tag
    byte); ``unpack(need, entry_offset)`` reads via the ``need(count)``
    closure (which raises :class:`TraceFormatError` on truncation) and
    returns the packet, raising :class:`TraceFormatError` itself for
    invalid field values.  Builtin tags cannot be overridden;
    re-registering the same tag replaces the previous codec (idempotent
    module re-imports).
    """
    if tag in _BUILTIN_TAGS:
        raise ValueError("tag 0x%02x is reserved for builtin packets" % tag)
    if not 0 < tag <= 0xFF:
        raise ValueError("tag must be one byte, got %r" % (tag,))
    _EXTENSION_PACK[cls] = (tag, pack)
    _EXTENSION_UNPACK[tag] = unpack


class TraceFormatError(Exception):
    """Raised on malformed trace files.

    Attributes:
        offset: Byte offset at which the problem was detected.
        entry_offset: Byte offset at which the failing entry started
            (everything before it parsed cleanly -- the salvage point).
    """

    def __init__(self, message: str, offset: int = 0, entry_offset: int = 0):
        super().__init__(message)
        self.offset = offset
        self.entry_offset = entry_offset


def write_entry(entry: Tuple[str, object], sink: BinaryIO) -> int:
    """Serialise one ``("packet"|"loss", item)`` entry; returns bytes."""
    tag, item = entry
    if tag == "loss":
        record: AuxLossRecord = item
        return sink.write(
            struct.pack(
                "<BQQQI",
                _TAG_LOSS,
                record.start_tsc,
                record.end_tsc,
                record.bytes_lost,
                record.packets_lost,
            )
        )
    packet: Packet = item
    extension = _EXTENSION_PACK.get(packet.__class__)
    if extension is not None:
        ext_tag, pack = extension
        payload = pack(packet)
        return sink.write(bytes((ext_tag,)) + payload)
    if isinstance(packet, PGEPacket):
        return sink.write(struct.pack("<BQQ", _TAG_PGE, packet.tsc, packet.ip))
    if isinstance(packet, PGDPacket):
        return sink.write(struct.pack("<BQQ", _TAG_PGD, packet.tsc, packet.ip))
    if isinstance(packet, TNTPacket):
        bits = 0
        for position, bit in enumerate(packet.bits):
            if bit:
                bits |= 1 << position
        return sink.write(
            struct.pack("<BQBB", _TAG_TNT, packet.tsc, len(packet.bits), bits)
        )
    if isinstance(packet, TIPPacket):
        if packet.compressed_size not in VALID_TIP_SIZES:
            raise TraceFormatError(
                "refusing to write invalid TIP compressed_size %d"
                % packet.compressed_size
            )
        return sink.write(
            struct.pack(
                "<BQBQ", _TAG_TIP, packet.tsc, packet.compressed_size, packet.target
            )
        )
    if isinstance(packet, FUPPacket):
        return sink.write(struct.pack("<BQQ", _TAG_FUP, packet.tsc, packet.ip))
    if isinstance(packet, TSCPacket):
        return sink.write(struct.pack("<BQ", _TAG_TSC, packet.tsc))
    raise TypeError("unknown packet %r" % (packet,))


def write_body(stream: Iterable[Tuple[str, object]], sink: BinaryIO) -> int:
    """Serialise entries without the magic (archive segment payloads)."""
    written = 0
    for entry in stream:
        written += write_entry(entry, sink)
    return written


def write_stream(
    stream: Iterable[Tuple[str, object]], sink: BinaryIO
) -> int:
    """Serialise a merged packet/loss stream; returns bytes written."""
    written = sink.write(_MAGIC)
    return written + write_body(stream, sink)


def iter_body(
    source: BinaryIO, base_offset: int = 0
) -> Iterator[Tuple[str, object]]:
    """Yield ``("packet"|"loss", item)`` entries from a magic-less body.

    *base_offset* is added to every reported offset, so errors from an
    archive segment payload point at the position in the archive file
    rather than within the payload buffer.
    """
    offset = base_offset

    while True:
        entry_offset = offset
        tag_byte = source.read(1)
        if not tag_byte:
            return
        offset += 1

        def need(count: int) -> bytes:
            nonlocal offset
            data = source.read(count)
            offset += len(data)
            if len(data) != count:
                raise TraceFormatError(
                    "truncated trace file at offset %d (entry at %d)"
                    % (offset, entry_offset),
                    offset=offset,
                    entry_offset=entry_offset,
                )
            return data

        tag = tag_byte[0]
        if tag == _TAG_PGE:
            tsc, ip = struct.unpack("<QQ", need(16))
            yield ("packet", PGEPacket(tsc=tsc, ip=ip))
        elif tag == _TAG_PGD:
            tsc, ip = struct.unpack("<QQ", need(16))
            yield ("packet", PGDPacket(tsc=tsc, ip=ip))
        elif tag == _TAG_TNT:
            tsc, count, bitfield = struct.unpack("<QBB", need(10))
            if not 1 <= count <= 6:
                raise TraceFormatError(
                    "invalid TNT count %d at offset %d" % (count, entry_offset),
                    offset=entry_offset,
                    entry_offset=entry_offset,
                )
            bits = tuple(bool(bitfield & (1 << i)) for i in range(count))
            yield ("packet", TNTPacket(tsc=tsc, bits=bits))
        elif tag == _TAG_TIP:
            tsc, size, target = struct.unpack("<QBQ", need(17))
            if size not in VALID_TIP_SIZES:
                raise TraceFormatError(
                    "invalid TIP compressed_size %d at offset %d"
                    % (size, entry_offset),
                    offset=entry_offset,
                    entry_offset=entry_offset,
                )
            yield ("packet", TIPPacket(tsc=tsc, target=target, compressed_size=size))
        elif tag == _TAG_FUP:
            tsc, ip = struct.unpack("<QQ", need(16))
            yield ("packet", FUPPacket(tsc=tsc, ip=ip))
        elif tag == _TAG_TSC:
            (tsc,) = struct.unpack("<Q", need(8))
            yield ("packet", TSCPacket(tsc=tsc))
        elif tag == _TAG_LOSS:
            start, end, lost, packets = struct.unpack("<QQQI", need(28))
            yield (
                "loss",
                AuxLossRecord(
                    start_tsc=start,
                    end_tsc=end,
                    bytes_lost=lost,
                    packets_lost=packets,
                ),
            )
        else:
            unpack = _EXTENSION_UNPACK.get(tag)
            if unpack is None:
                raise TraceFormatError(
                    "unknown tag 0x%02x at offset %d" % (tag, entry_offset),
                    offset=entry_offset,
                    entry_offset=entry_offset,
                )
            yield ("packet", unpack(need, entry_offset))


def iter_stream(source: BinaryIO) -> Iterator[Tuple[str, object]]:
    """Stream entries from a serialised ``RPT1`` file one at a time."""
    magic = source.read(4)
    if magic != _MAGIC:
        raise TraceFormatError(
            "bad magic %r at offset 0" % magic, offset=0, entry_offset=0
        )
    yield from iter_body(source, base_offset=4)


def read_stream(source: BinaryIO) -> List[Tuple[str, object]]:
    """Parse a serialised stream back into ``("packet"|"loss", item)``."""
    return list(iter_stream(source))


def dump_bytes(stream: Iterable[Tuple[str, object]]) -> bytes:
    """Serialise to an in-memory buffer."""
    sink = io.BytesIO()
    write_stream(stream, sink)
    return sink.getvalue()


def load_bytes(data: bytes) -> List[Tuple[str, object]]:
    """Parse from an in-memory buffer."""
    return read_stream(io.BytesIO(data))
