"""Binary serialisation of PT packet streams.

The online collector "periodically dumps trace packets to files"
(Section 3); this module defines the on-disk format: a compact binary
encoding with one header byte per packet, variable-length payloads
matching each packet's compressed size, and framed aux-loss records.
:func:`write_stream` / :func:`read_stream` round-trip a merged
``("packet" | "loss", item)`` stream, so a collected trace can be stored,
shipped, and decoded later exactly as perf data files are.

Format (little-endian):

====  =======================================================
byte  meaning
====  =======================================================
0x01  PGE   -- u64 tsc, u64 ip
0x02  PGD   -- u64 tsc, u64 ip
0x03  TNT   -- u64 tsc, u8 count, u8 bitfield
0x04  TIP   -- u64 tsc, u8 compressed_size, u64 target
0x05  FUP   -- u64 tsc, u64 ip
0x06  TSC   -- u64 tsc
0x07  LOSS  -- u64 start, u64 end, u64 bytes, u32 packets
====  =======================================================

The logical ``compressed_size`` is stored so byte accounting survives the
round trip (the file stores full IPs for simplicity; real PT would store
the compressed form -- the *semantics* is identical).
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable, List, Tuple

from .packets import (
    AuxLossRecord,
    FUPPacket,
    Packet,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
)

_TAG_PGE = 0x01
_TAG_PGD = 0x02
_TAG_TNT = 0x03
_TAG_TIP = 0x04
_TAG_FUP = 0x05
_TAG_TSC = 0x06
_TAG_LOSS = 0x07

_MAGIC = b"RPT1"


class TraceFormatError(Exception):
    """Raised on malformed trace files."""


def write_stream(
    stream: Iterable[Tuple[str, object]], sink: BinaryIO
) -> int:
    """Serialise a merged packet/loss stream; returns bytes written."""
    written = sink.write(_MAGIC)
    for tag, item in stream:
        if tag == "loss":
            record: AuxLossRecord = item
            written += sink.write(
                struct.pack(
                    "<BQQQI",
                    _TAG_LOSS,
                    record.start_tsc,
                    record.end_tsc,
                    record.bytes_lost,
                    record.packets_lost,
                )
            )
            continue
        packet: Packet = item
        if isinstance(packet, PGEPacket):
            written += sink.write(struct.pack("<BQQ", _TAG_PGE, packet.tsc, packet.ip))
        elif isinstance(packet, PGDPacket):
            written += sink.write(struct.pack("<BQQ", _TAG_PGD, packet.tsc, packet.ip))
        elif isinstance(packet, TNTPacket):
            bits = 0
            for position, bit in enumerate(packet.bits):
                if bit:
                    bits |= 1 << position
            written += sink.write(
                struct.pack("<BQBB", _TAG_TNT, packet.tsc, len(packet.bits), bits)
            )
        elif isinstance(packet, TIPPacket):
            written += sink.write(
                struct.pack(
                    "<BQBQ", _TAG_TIP, packet.tsc, packet.compressed_size, packet.target
                )
            )
        elif isinstance(packet, FUPPacket):
            written += sink.write(struct.pack("<BQQ", _TAG_FUP, packet.tsc, packet.ip))
        elif isinstance(packet, TSCPacket):
            written += sink.write(struct.pack("<BQ", _TAG_TSC, packet.tsc))
        else:  # pragma: no cover - exhaustive
            raise TypeError("unknown packet %r" % (packet,))
    return written


def read_stream(source: BinaryIO) -> List[Tuple[str, object]]:
    """Parse a serialised stream back into ``("packet"|"loss", item)``."""
    magic = source.read(4)
    if magic != _MAGIC:
        raise TraceFormatError("bad magic %r" % magic)
    stream: List[Tuple[str, object]] = []

    def need(count: int) -> bytes:
        data = source.read(count)
        if len(data) != count:
            raise TraceFormatError("truncated trace file")
        return data

    while True:
        tag_byte = source.read(1)
        if not tag_byte:
            break
        tag = tag_byte[0]
        if tag == _TAG_PGE:
            tsc, ip = struct.unpack("<QQ", need(16))
            stream.append(("packet", PGEPacket(tsc=tsc, ip=ip)))
        elif tag == _TAG_PGD:
            tsc, ip = struct.unpack("<QQ", need(16))
            stream.append(("packet", PGDPacket(tsc=tsc, ip=ip)))
        elif tag == _TAG_TNT:
            tsc, count, bitfield = struct.unpack("<QBB", need(10))
            if not 1 <= count <= 6:
                raise TraceFormatError("invalid TNT count %d" % count)
            bits = tuple(bool(bitfield & (1 << i)) for i in range(count))
            stream.append(("packet", TNTPacket(tsc=tsc, bits=bits)))
        elif tag == _TAG_TIP:
            tsc, size, target = struct.unpack("<QBQ", need(17))
            stream.append(
                ("packet", TIPPacket(tsc=tsc, target=target, compressed_size=size))
            )
        elif tag == _TAG_FUP:
            tsc, ip = struct.unpack("<QQ", need(16))
            stream.append(("packet", FUPPacket(tsc=tsc, ip=ip)))
        elif tag == _TAG_TSC:
            (tsc,) = struct.unpack("<Q", need(8))
            stream.append(("packet", TSCPacket(tsc=tsc)))
        elif tag == _TAG_LOSS:
            start, end, lost, packets = struct.unpack("<QQQI", need(28))
            stream.append(
                (
                    "loss",
                    AuxLossRecord(
                        start_tsc=start,
                        end_tsc=end,
                        bytes_lost=lost,
                        packets_lost=packets,
                    ),
                )
            )
        else:
            raise TraceFormatError("unknown tag 0x%02x" % tag)
    return stream


def dump_bytes(stream: Iterable[Tuple[str, object]]) -> bytes:
    """Serialise to an in-memory buffer."""
    sink = io.BytesIO()
    write_stream(stream, sink)
    return sink.getvalue()


def load_bytes(data: bytes) -> List[Tuple[str, object]]:
    """Parse from an in-memory buffer."""
    return read_stream(io.BytesIO(data))
