"""Intel PT trace packets (the subset JPortal consumes).

Packet kinds follow Section 2 of the paper:

* ``PGE``/``PGD`` -- tracing start/stop, with the IP;
* ``TNT`` -- packed conditional-branch outcomes (1 bit per branch, up to
  6 bits per short packet);
* ``TIP`` -- indirect-branch target IP, with upper-byte compression
  against the previously emitted IP;
* ``FUP`` -- source IP of an asynchronous event;
* ``TSC`` -- timestamp packets.

Each packet subclasses its normalised event base from
:mod:`repro.tracesource.events`, which is what the decode engines
dispatch on -- the PT classes only add the encoded ``size`` and any
PT-specific constraints (the 6-bit short-TNT limit, TIP IP compression).

Every packet also carries the generation-time TSC as metadata (real
decoders interpolate between TSC packets; we model the resulting
imprecision with sideband timestamp jitter instead -- see DESIGN.md).

:class:`AuxLossRecord` is not a PT packet: it models the
``perf_record_aux`` records (with the truncated flag) that perf emits when
the ring buffer overflows, which JPortal uses to localise data loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..tracesource.events import (
    AsyncEvent,
    ConditionalOutcomes,
    IndirectTarget,
    LossSpan,
    TimeRef,
    TraceDisable,
    TraceEnable,
)


@dataclass(frozen=True)
class PGEPacket(TraceEnable):
    """Packet Generation Enable: tracing begins at ``ip``."""

    @property
    def size(self) -> int:
        return 9


@dataclass(frozen=True)
class PGDPacket(TraceDisable):
    """Packet Generation Disable: tracing ends at ``ip``."""

    @property
    def size(self) -> int:
        return 9


@dataclass(frozen=True)
class TNTPacket(ConditionalOutcomes):
    """Up to six conditional outcomes packed into one byte."""

    @property
    def size(self) -> int:
        return 1

    def __post_init__(self):
        if not 1 <= len(self.bits) <= 6:
            raise ValueError("short TNT packets carry 1..6 bits")


@dataclass(frozen=True)
class TIPPacket(IndirectTarget):
    """Indirect-branch target.

    ``compressed_size`` is the encoded byte count after IP compression
    (header byte + 2, 4, or 8 target bytes).
    """

    compressed_size: int = 9

    @property
    def size(self) -> int:
        return self.compressed_size


@dataclass(frozen=True)
class FUPPacket(AsyncEvent):
    """Source IP of an asynchronous event (fault, interrupt)."""

    @property
    def size(self) -> int:
        return 9


@dataclass(frozen=True)
class TSCPacket(TimeRef):
    """Timestamp packet."""

    @property
    def size(self) -> int:
        return 8


Packet = Union[PGEPacket, PGDPacket, TNTPacket, TIPPacket, FUPPacket, TSCPacket]


@dataclass(frozen=True)
class AuxLossRecord(LossSpan):
    """A hole in the trace: packets in ``[start_tsc, end_tsc]`` were lost.

    Mirrors ``perf_record_aux`` with ``PERF_AUX_FLAG_TRUNCATED``: JPortal
    "leverages these events to localise data loss and separate
    subsequences" (Section 4).
    """


def compressed_tip_size(target: int, last_ip: int) -> int:
    """Encoded size of a TIP for *target* given the previous IP context.

    Mirrors PT's IP compression: if the upper 6 bytes match the last IP,
    only 2 target bytes are sent; if the upper 4 match, 4 bytes; otherwise
    the full 8.  One header byte is always present.
    """
    if (target >> 16) == (last_ip >> 16):
        return 1 + 2
    if (target >> 32) == (last_ip >> 32):
        return 1 + 4
    return 1 + 8
