"""PT packet encoder: hardware branch events -> a compressed packet stream.

Implements the compression behaviour the paper describes in Section 2:

* conditional outcomes are packed into multi-bit TNT packets (the pending
  TNT buffer is flushed before any non-TNT packet so the bit/branch
  correspondence survives stream segmentation);
* unconditional direct jumps produce nothing (the runtime never emits
  events for them in the first place);
* TIP target IPs are compressed against the previously emitted IP;
* TSC packets are inserted whenever enough time has passed since the last
  one.

The encoder is per-core and stateful; use :func:`encode_core` for the
common one-shot case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..jvm.machine import (
    DisableEvent,
    EnableEvent,
    FupEvent,
    HardwareEvent,
    TipEvent,
    TntEvent,
)
from ..tracesource.events import ConditionalOutcomes, IndirectTarget
from .packets import (
    FUPPacket,
    Packet,
    PGDPacket,
    PGEPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
    compressed_tip_size,
)


@dataclass
class EncoderConfig:
    """Encoder tuning.

    Attributes:
        tsc_interval: Emit a TSC packet when at least this many TSC units
            elapsed since the previous one.
        tnt_capacity: Bits per short TNT packet (6 in real PT).
    """

    tsc_interval: int = 2_000
    tnt_capacity: int = 6


@dataclass
class EncoderStats:
    """Byte/packet accounting for trace-size experiments (Table 5).

    Counts through the event bases, so any frontend's packets (PT TNT/
    TIP, E-Trace branch maps / address packets) land in the same
    ``tnt_bits``/``tips`` buckets and cross-format byte comparisons stay
    apples-to-apples.
    """

    packets: int = 0
    bytes: int = 0
    tnt_bits: int = 0
    tips: int = 0

    def add(self, packet) -> None:
        self.packets += 1
        self.bytes += packet.size
        if isinstance(packet, ConditionalOutcomes):
            self.tnt_bits += len(packet.bits)
        elif isinstance(packet, IndirectTarget):
            self.tips += 1


class PTEncoder:
    """Stateful single-core encoder."""

    def __init__(self, config: Optional[EncoderConfig] = None):
        # ``None`` sentinel, not a default-argument instance: a default
        # ``EncoderConfig()`` would be evaluated once and shared by every
        # encoder constructed without an explicit config, so mutating one
        # encoder's ``config`` (a bench sweep tuning ``tsc_interval``)
        # would silently retune all of them.
        self.config = config if config is not None else EncoderConfig()
        self.stats = EncoderStats()
        self._pending_bits: List[bool] = []
        self._pending_tsc = 0
        self._last_ip = 0
        self._last_tsc_packet = None

    def encode(self, events: Iterable[HardwareEvent]) -> List[Packet]:
        """Encode *events* (in TSC order) into packets."""
        packets: List[Packet] = []
        for event in events:
            self._maybe_tsc(event.tsc, packets)
            if isinstance(event, TntEvent):
                if not self._pending_bits:
                    self._pending_tsc = event.tsc
                self._pending_bits.append(event.taken)
                if len(self._pending_bits) >= self.config.tnt_capacity:
                    self._flush_tnt(packets)
            elif isinstance(event, TipEvent):
                self._flush_tnt(packets)
                size = compressed_tip_size(event.target, self._last_ip)
                self._last_ip = event.target
                self._append(packets, TIPPacket(event.tsc, event.target, size))
            elif isinstance(event, FupEvent):
                self._flush_tnt(packets)
                self._append(packets, FUPPacket(event.tsc, event.ip))
            elif isinstance(event, EnableEvent):
                self._flush_tnt(packets)
                self._append(packets, PGEPacket(event.tsc, event.ip))
            elif isinstance(event, DisableEvent):
                self._flush_tnt(packets)
                self._append(packets, PGDPacket(event.tsc, event.ip))
            else:  # pragma: no cover - exhaustive over HardwareEvent
                raise TypeError("unknown event %r" % (event,))
        self._flush_tnt(packets)
        return packets

    # ------------------------------------------------------------- internals
    def _append(self, packets: List[Packet], packet: Packet) -> None:
        packets.append(packet)
        self.stats.add(packet)

    def _flush_tnt(self, packets: List[Packet]) -> None:
        if self._pending_bits:
            self._append(
                packets, TNTPacket(self._pending_tsc, tuple(self._pending_bits))
            )
            self._pending_bits = []

    def _maybe_tsc(self, tsc: int, packets: List[Packet]) -> None:
        if (
            self._last_tsc_packet is None
            or tsc - self._last_tsc_packet >= self.config.tsc_interval
        ):
            self._flush_tnt(packets)
            self._append(packets, TSCPacket(tsc))
            self._last_tsc_packet = tsc


def encode_core(
    events: Iterable[HardwareEvent], config: Optional[EncoderConfig] = None
) -> List[Packet]:
    """Encode one core's event list; convenience wrapper."""
    return PTEncoder(config).encode(events)
