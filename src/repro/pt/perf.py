"""perf_event_open-style collection session.

:func:`collect` is the moral equivalent of JPortal's online component
(Section 6): it attaches to a finished :class:`~repro.jvm.runtime.RunResult`
(whose per-core event lists stand in for the hardware's packet generation),
applies the IP filter (only code-cache/template addresses are traced),
encodes packets per core, and pushes them through the per-core ring buffer
that produces data loss and ``perf_record_aux`` loss records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..jvm.machine import (
    AddressSpace,
    DisableEvent,
    EnableEvent,
    FupEvent,
    HardwareEvent,
    ThreadSwitchRecord,
    TipEvent,
)
from ..jvm.runtime import RunResult
from ..tracesource import get_frontend
from .buffer import BufferResult, RingBuffer, RingBufferConfig
from .encoder import EncoderConfig, EncoderStats, PTEncoder
from .packets import AuxLossRecord, Packet


@dataclass
class PTConfig:
    """Collection configuration: the paper's buffer-size knob lives here."""

    buffer: RingBufferConfig = field(default_factory=RingBufferConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    ip_filter: bool = True
    #: Packets per ``RPT2`` archive segment when exporting with
    #: :func:`collect_to_archive` -- the "periodically dumps trace packets
    #: to files" knob (Section 3): smaller segments mean finer-grained
    #: crash-loss, larger ones less framing overhead.
    archive_segment_packets: int = 256
    #: Trace frontend (registry name): ``"pt"`` encodes Intel PT packets,
    #: ``"etrace"`` RISC-V E-Trace packets.  The ring buffer, sideband,
    #: archive, and decode layers are format-agnostic; only the packet
    #: encoding changes.  When *encoder* is not the selected frontend's
    #: config type, the frontend's defaults apply.
    frontend: str = "pt"


@dataclass
class CoreTrace:
    """One core's collected trace."""

    core: int
    packets: List[Packet]
    losses: List[AuxLossRecord]
    bytes_generated: int
    bytes_lost: int
    encoder_stats: EncoderStats

    @property
    def loss_fraction(self) -> float:
        if self.bytes_generated == 0:
            return 0.0
        return self.bytes_lost / self.bytes_generated


@dataclass
class PTTrace:
    """The full collected trace: per-core packets + sideband records."""

    cores: List[CoreTrace]
    thread_switches: List[ThreadSwitchRecord]
    config: PTConfig

    @property
    def bytes_generated(self) -> int:
        return sum(core.bytes_generated for core in self.cores)

    @property
    def bytes_lost(self) -> int:
        return sum(core.bytes_lost for core in self.cores)

    @property
    def bytes_kept(self) -> int:
        return self.bytes_generated - self.bytes_lost

    @property
    def loss_fraction(self) -> float:
        if self.bytes_generated == 0:
            return 0.0
        return self.bytes_lost / self.bytes_generated

    def packet_count(self) -> int:
        return sum(len(core.packets) for core in self.cores)


def _ip_of(event: HardwareEvent):
    if isinstance(event, TipEvent):
        return event.target
    if isinstance(event, (FupEvent, EnableEvent, DisableEvent)):
        return event.ip
    return None


def filter_events(
    events: List[HardwareEvent], address_space: AddressSpace
) -> List[HardwareEvent]:
    """Drop events whose IP falls outside the configured filter range.

    Mirrors PT's IP-range filtering, which JPortal programs to the code
    cache boundary so that kernel/other-process code produces no packets.
    TNT events carry no IP; hardware suppresses them while execution is
    outside the range, modelled here by tracking the range state from the
    most recent IP-bearing event.
    """
    kept = []
    in_range = True
    for event in events:
        ip = _ip_of(event)
        if ip is None:
            # TNT: suppressed while execution is outside the filter range.
            if in_range:
                kept.append(event)
            continue
        if ip == 0 or address_space.in_filter_range(ip):
            in_range = True
            kept.append(event)
        else:
            in_range = False
    return kept


def calibrate_drain_period(
    run: RunResult,
    capacity_bytes: int,
    target_loss: float = 0.25,
    iterations: int = 18,
) -> int:
    """Reader wakeup period at which *run* loses ~``target_loss`` of its
    trace under the periodic-drain buffer model.

    Longer periods mean larger bursts must fit in the ring, so loss grows
    with the period and shrinks with capacity -- calibrating at one
    capacity leaves the paper's buffer-size sensitivity intact at others.
    """
    from .encoder import PTEncoder

    packets_per_core = [PTEncoder().encode(events) for events in run.core_events]
    low, high = 8, max(run.total_cost, 16)
    best = high
    for _ in range(iterations):
        mid = int((low * high) ** 0.5)
        lost = total = 0
        for packets in packets_per_core:
            result = RingBuffer(
                RingBufferConfig(capacity_bytes=capacity_bytes, drain_period=mid)
            ).apply(packets)
            lost += result.bytes_lost
            total += result.bytes_in
        loss = lost / total if total else 0.0
        best = mid
        if loss > target_loss:
            high = mid  # losing too much: wake the reader more often
        else:
            low = mid  # losing too little: longer period
        if high - low <= 1:
            break
    return best


def calibrate_drain_bandwidth(
    run: RunResult,
    capacity_bytes: int,
    target_loss: float = 0.25,
    iterations: int = 18,
) -> float:
    """Drain bandwidth at which *run* loses ~``target_loss`` of its trace.

    Binary search over the ring-buffer model.  Useful for experiments that
    want a paper-like loss regime (e.g. ~25% at the "128 MB"-scale buffer)
    regardless of a workload's trace-generation rate.
    """
    from .encoder import PTEncoder

    packets_per_core = [PTEncoder().encode(events) for events in run.core_events]
    low, high = 1e-4, 100.0
    best = (low * high) ** 0.5
    for _ in range(iterations):
        mid = (low * high) ** 0.5
        lost = total = 0
        for packets in packets_per_core:
            result = RingBuffer(
                RingBufferConfig(capacity_bytes=capacity_bytes, drain_bandwidth=mid)
            ).apply(packets)
            lost += result.bytes_lost
            total += result.bytes_in
        loss = lost / total if total else 0.0
        best = mid
        if loss > target_loss:
            low = mid  # losing too much: drain faster
        else:
            high = mid  # losing too little: drain slower
    return best


def collect(run: RunResult, config: PTConfig = None) -> PTTrace:
    """Collect a trace from a finished run (the online component).

    The packet encoding is the frontend named by ``config.frontend``;
    the ring-buffer loss model and sideband handling are shared.
    """
    config = config or PTConfig()
    frontend = get_frontend(config.frontend)
    encoder_config = (
        config.encoder
        if isinstance(config.encoder, frontend.encoder_config_type)
        else None
    )
    cores: List[CoreTrace] = []
    for core_id, events in enumerate(run.core_events):
        if config.ip_filter:
            events = filter_events(events, run.address_space)
        encoder = frontend.make_encoder(encoder_config)
        packets = encoder.encode(events)
        buffered: BufferResult = RingBuffer(config.buffer).apply(packets)
        cores.append(
            CoreTrace(
                core=core_id,
                packets=buffered.kept,
                losses=buffered.losses,
                bytes_generated=buffered.bytes_in,
                bytes_lost=buffered.bytes_lost,
                encoder_stats=encoder.stats,
            )
        )
    return PTTrace(
        cores=cores, thread_switches=list(run.thread_switches), config=config
    )


def collect_to_archive(
    run: RunResult, path, config: PTConfig = None, snapshot_path=None,
    on_segment=None,
):
    """Collect a trace and persist it as a durable ``RPT2`` archive.

    The online component's periodic-dump loop in one call: collect the
    per-core packet streams, export the code metadata, and stream both
    into the segmented crash-safe archive at *path* (metadata snapshot at
    *snapshot_path*, default ``<path>.meta``).  Returns
    ``(trace, database, report)``.

    *on_segment*, if given, is called as ``on_segment(seq, core, lo, hi)``
    immediately after each segment record commits to disk -- the
    segment-granular hook a streaming consumer (:mod:`repro.stream`)
    uses to wake its tail reader instead of polling.
    """
    # Lazy imports: repro.core.pipeline imports this module at module
    # level, so reaching back into repro.core here must happen at call
    # time to avoid an import cycle.
    from ..core.metadata import collect_metadata
    from .archive import write_archive

    config = config or PTConfig()
    trace = collect(run, config)
    database = collect_metadata(run)
    report = write_archive(
        trace,
        database,
        path,
        segment_packets=config.archive_segment_packets,
        snapshot_path=snapshot_path,
        on_segment=on_segment,
    )
    return trace, database, report
