"""ProjectionModel: how a frontend's packets project runtime control flow.

The static analysis layer (:mod:`repro.analysis`) asks one question the
dynamic decode layer never has to: *what could a trace have said*?  The
answer depends on the frontend.  Intel PT projects every retired
conditional to a TNT bit and every indirect transfer to a target-IP TIP
packet (upper-byte compressed); RISC-V E-Trace packs up to 31 outcome
bits into one branch map and reports indirect targets as deltas against
the previously reported address, with a periodic full-address sync
packet bounding resynchronisation cost.  Both reveal the *same
information* per event -- an outcome bit, a target address -- but at
different byte costs and with different loss/resync exposure, and a
hypothetical frontend (address-only hardware, say) may reveal strictly
less.

:class:`ProjectionModel` captures exactly what the static layer needs,
per frontend:

* **symbol projection** -- whether conditional outcomes are observable
  at all (:attr:`~ProjectionModel.observes_conditionals`), whether
  dispatch targets are (:attr:`~ProjectionModel.observes_targets`), and
  the label each instruction class contributes to the packet-projection
  NFA (:meth:`~ProjectionModel.conditional_label`,
  :meth:`~ProjectionModel.transfer_label`,
  :meth:`~ProjectionModel.target_token`);
* **packet grammar costs** -- outcome-batch capacity and byte layout,
  indirect-target byte bounds, periodic-sync interval and cost, time
  and async packet sizes -- from which the trace-plan advisor
  (:mod:`repro.analysis.advisor`) derives bytes-per-branch bounds
  without tracing a single byte;
* **identity** -- ``name`` (the frontend registry key) and ``version``,
  folded into the persistent analysis-cache key
  (:func:`repro.core.dfacache.analysis_cache_key`) so a report computed
  under one model is never silently reused under another.

Each :class:`~repro.tracesource.TraceFrontend` carries its model in the
registry; :func:`repro.tracesource.get_projection_model` resolves one by
frontend name, importing the builtin frontends lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class ProjectionModel:
    """One frontend's static projection contract.

    Attributes:
        name: The frontend registry name (``"pt"``, ``"etrace"``).
        version: Model revision, bumped whenever the projection semantics
            or the grammar constants change; part of the analysis cache
            key so stale per-frontend reports invalidate.
        observes_conditionals: Whether a retired conditional contributes
            an outcome bit to the stream (PT TNT, E-Trace branch map).
        observes_targets: Whether indirect transfers reveal their target
            address (PT TIP, E-Trace address packets).  ``False`` models
            outcome-only hardware: every dispatch is invisible and only
            branch bits survive.
        outcome_batch_bits: Maximum outcome bits one packet carries
            (PT short TNT: 6; E-Trace branch map: 31).
        outcome_header_bytes: Fixed per-outcome-packet byte cost.
        outcome_bits_per_payload_byte: Outcome bits packed per payload
            byte, or 0 when the bits ride inside the header byte itself
            (PT's short TNT is one byte total).
        target_bytes_min: Best-case encoded bytes for one indirect
            target (maximal IP/delta compression).
        target_bytes_typical: The compression the grammar delivers when
            successive targets share a region (template dispatch): the
            advisor's point estimate.
        target_bytes_max: Worst-case encoded bytes for one target.
        sync_interval: Emit a full-address sync packet after this many
            delta-compressed targets (``None``: the format never
            resyncs periodically -- PT relies on PSB/PGE instead).
        sync_bytes: Encoded size of that sync packet.
        time_bytes: Encoded size of a time-reference packet.
        async_bytes: Encoded size of an async-event (trap/FUP) packet.
    """

    name: str
    version: int
    observes_conditionals: bool = True
    observes_targets: bool = True
    outcome_batch_bits: int = 6
    outcome_header_bytes: int = 1
    outcome_bits_per_payload_byte: int = 0
    target_bytes_min: int = 3
    target_bytes_typical: int = 3
    target_bytes_max: int = 9
    sync_interval: Optional[int] = None
    sync_bytes: int = 0
    time_bytes: int = 8
    async_bytes: int = 9

    # ------------------------------------------------------ symbol projection
    def symbol_token(self, symbol) -> object:
        """What a dispatch reveals about the instruction being executed.

        The symbol itself when targets are observable (the template TIP
        names the opcode); a constant otherwise (the trace still reveals
        that *a* step happened -- stream length -- but not which).
        """
        return symbol if self.observes_targets else "·"

    def conditional_label(self, symbol, taken: bool) -> Tuple[object, object]:
        """NFA edge label for one arm of a conditional."""
        if self.observes_conditionals:
            return (self.symbol_token(symbol), taken)
        return (self.symbol_token(symbol), None)

    def transfer_label(self, symbol) -> Tuple[object, object]:
        """NFA edge label for a non-conditional transfer."""
        return (self.symbol_token(symbol), None)

    def target_token(self, symbol, template_ranges) -> object:
        """The equivalence class a dispatch target address reveals.

        Two sibling edges are discriminated exactly when their tokens
        differ.  With a template table, the token is the target opcode's
        machine address range tuple (two opcodes sharing ranges would
        alias); without one, the symbol itself; and under a model that
        never reports targets, one shared token -- every sibling
        collides.
        """
        if not self.observes_targets:
            return None
        if template_ranges is not None:
            return template_ranges
        return symbol

    # ------------------------------------------------------- grammar costs
    def outcome_packet_bytes(self, bits: int) -> int:
        """Encoded size of one outcome packet carrying *bits* outcomes."""
        if bits <= 0 or not self.observes_conditionals:
            return 0
        payload = 0
        if self.outcome_bits_per_payload_byte:
            per = self.outcome_bits_per_payload_byte
            payload = (bits + per - 1) // per
        return self.outcome_header_bytes + payload

    def bytes_per_outcome_bounds(self) -> Tuple[float, float]:
        """(best, worst) bytes per conditional outcome bit.

        Best: packets filled to capacity.  Worst: every bit flushed
        alone -- which is the *normal* interpreted-mode case, because the
        pending batch is flushed before every dispatch packet.
        """
        if not self.observes_conditionals:
            return (0.0, 0.0)
        best = self.outcome_packet_bytes(self.outcome_batch_bits) / float(
            self.outcome_batch_bits
        )
        worst = float(self.outcome_packet_bytes(1))
        return (best, worst)

    def resync_exposure(self) -> float:
        """Fraction of indirect targets paying full-address sync cost.

        0.0 for formats without periodic resync (PT).  For E-Trace every
        ``sync_interval + 1``-th address packet is an uncompressed sync,
        which is also the decoder's recovery granularity after loss.
        """
        if not self.observes_targets or self.sync_interval is None:
            return 0.0
        return 1.0 / (self.sync_interval + 1)

    def indirect_bytes_estimate(self) -> float:
        """Expected bytes per indirect target under locality.

        Template dispatch keeps successive targets in one small region,
        so the typical compressed size applies; periodic syncs add their
        amortised share.
        """
        if not self.observes_targets:
            return 0.0
        exposure = self.resync_exposure()
        return (
            self.target_bytes_typical * (1.0 - exposure)
            + self.sync_bytes * exposure
        )

    def indirect_bytes_bounds(self) -> Tuple[float, float]:
        """(best, worst) bytes per indirect target, sync included."""
        if not self.observes_targets:
            return (0.0, 0.0)
        return (
            float(self.target_bytes_min),
            float(max(self.target_bytes_max, self.sync_bytes)),
        )
