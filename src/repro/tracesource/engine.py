"""Source-agnostic branch-event decoder: trace events -> native control flow.

Given one *thread's* TSC-ordered stream of branch events and loss records,
plus the machine-code metadata (a code database providing template lookup
and compiled-code lookup), the engine produces the native-level flow:

* :class:`InterpDispatch` -- an interpreter template was entered (one per
  executed bytecode; conditional templates carry their outcome bit);
* :class:`InterpReturnStub` -- compiled code returned into the interpreter;
* :class:`JitSpan` -- a maximal walk through compiled machine code,
  recorded as the sequence of executed instruction addresses (paper
  Figure 3(d)); the walk follows direct jumps/calls statically, consumes
  one outcome bit per ``jcc``, and stops at indirect branches awaiting the
  next indirect-target event, exactly like libipt;
* :class:`TraceLoss` -- a buffer-overflow hole (segmentation point);
  ``synthetic=True`` marks holes *declared by the decoder itself* when a
  segment exceeds its :class:`DegradationPolicy` anomaly budget;
* :class:`DecodeAnomaly` -- diagnostics, each tagged with a structured
  :class:`AnomalyKind` reason code (orphan outcome bits after a loss,
  unknown IPs, desynchronised walks, conditionals flushed without their
  bit, ...).

The engine never looks at a concrete packet format.  It dispatches on the
:mod:`repro.tracesource.events` base classes -- conditional-outcome
batches, indirect targets, async events, enable/disable, time references
-- which both the Intel PT frontend (``TNT``/``TIP``/``FUP``/``PGE``/
``PGD``/``TSC`` in :mod:`repro.pt.packets`) and the RISC-V E-Trace
frontend (branch maps / address packets in :mod:`repro.etrace.packets`)
subclass.  :class:`repro.pt.decoder.PTDecoder` and
:class:`~repro.pt.decoder.PTBatchDecoder` are thin aliases of the two
engines here.

Robustness contract: :meth:`EventDecoder.decode` never raises on a
malformed stream.  Corruption degrades into anomalies, discarded outcome
backlog, and (under a :class:`DegradationPolicy` budget) synthetic holes
that hand the damaged span to the recovery engine -- mirroring how
production trace stacks keep lifting while the input degrades.  On a
desynchronisation the decoder *resyncs*: it scans forward to the next
structurally-valid indirect-target anchor (a template, return-stub, or
code-cache target) instead of aborting the walk, discarding outcome bits
whose branch context is unknown.

The code database must provide::

    template_op_at(ip)             -> Op or None (which template holds ip)
    op_is_conditional(op)          -> bool
    is_return_stub(ip)             -> bool
    in_code_cache(ip)              -> bool
    native_instruction_at(ip, tsc) -> MachineInstruction or None
        (tsc selects the code-cache epoch when reclaimed addresses
        were reused; pass None for "latest")

which :class:`repro.core.metadata.CodeDatabase` implements from the
exported metadata only (never from runtime-private state).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..jvm.machine import MIKind
from .events import (
    AsyncEvent,
    ConditionalOutcomes,
    IndirectTarget,
    LossSpan,
    TimeRef,
    TraceDisable,
    TraceEnable,
)

#: Safety bound on machine instructions walked without consuming a packet.
MAX_WALK = 2_000_000

#: TIP-target classes and walk-block end kinds: the integer contract
#: between this layer and :class:`repro.core.metadata.CodeDatabase`'s
#: ``classify_target``/``walk_block`` caches.  Defined here (and imported
#: by the core layer) because the trace-source layer must never import
#: ``repro.core``.
TARGET_UNKNOWN, TARGET_STUB, TARGET_TEMPLATE, TARGET_CODE = 0, 1, 2, 3
BLOCK_COND, BLOCK_END, BLOCK_CHAIN, BLOCK_UNKNOWN, BLOCK_EPOCH = 0, 1, 2, 3, 4

#: Sentinel a batch lifter's ``lift_one`` returns for a stale debug
#: record (resolves to no live bytecode; counted, never raised).
LIFT_STALE = object()


class AnomalyKind(str, Enum):
    """Structured reason codes for :class:`DecodeAnomaly` (and the
    degradation layer built on top of them).

    Each kind is counted per thread in the metrics registry under
    ``decode.anomaly.<value>`` and aggregated onto
    :attr:`repro.core.pipeline.JPortalResult.anomalies_by_kind`.

    The ``TNT`` names are historical (Intel PT's taken/not-taken
    packets); they cover conditional-outcome batches from any frontend,
    including E-Trace branch maps.
    """

    #: Outcome bits arriving between a loss and the next indirect target:
    #: their branches were dropped with the loss, so the bits bind to
    #: nothing.
    ORPHAN_TNT = "orphan_tnt"
    #: A conditional dispatch whose outcome bit never arrived (flushed by
    #: an indirect target, async event, loss, synthetic hole, or end of
    #: stream).
    CONDITIONAL_WITHOUT_TNT = "conditional_without_tnt"
    #: A suspended compiled-code walk displaced by an indirect target.
    WALK_ABANDONED = "walk_abandoned"
    #: A compiled-code walk reached an address with no exported
    #: instruction (stale metadata, mid-instruction target).
    WALK_DESYNC = "walk_desync"
    #: A walk exceeded :data:`MAX_WALK` instructions without input.
    WALK_BUDGET = "walk_budget"
    #: An indirect target that maps to no template, stub, or compiled
    #: code.
    TIP_UNMAPPED = "tip_unmapped"
    #: An outcome batch discarded while resynchronising after a desync.
    TNT_DISCARDED_DESYNC = "tnt_discarded_desync"
    #: A debug-info record that no longer resolves (pre-GC export race);
    #: recorded by the JIT-mode lifter, not the packet decoder.
    STALE_DEBUG_INFO = "stale_debug_info"
    #: A stream entry that is not a recognised packet or loss record.
    MALFORMED_ITEM = "malformed_item"
    #: An unexpected internal failure converted into degradation instead
    #: of a raised exception (the no-crash contract's backstop).
    DECODER_ERROR = "decoder_error"
    #: A whole per-thread analysis chain that failed and was replaced by
    #: an empty flow (recorded by the pipeline, not the packet decoder).
    CHAIN_FAILURE = "chain_failure"
    # ---- archive-level kinds (recorded by the RPT2 salvage reader in
    # :mod:`repro.pt.archive`, not the packet decoder; published under
    # ``archive.anomaly.<value>`` and folded into ``anomalies_by_kind``).
    #: A segment whose payload CRC32 did not match its header (bit rot).
    SEGMENT_CRC_MISMATCH = "segment_crc_mismatch"
    #: A segment cut short or never committed (torn write / truncation).
    SEGMENT_TORN = "segment_torn"
    #: A gap in the record sequence numbering (segments lost wholesale).
    SEGMENT_GAP = "segment_gap"
    #: A record whose sequence number was already consumed (replayed dump).
    SEGMENT_DUPLICATE = "segment_duplicate"
    #: The archive ends without its seal record (crash or truncation at a
    #: record boundary -- everything present is still salvageable).
    ARCHIVE_UNSEALED = "archive_unsealed"
    #: Bytes that frame no parseable record (garbage, damaged headers).
    ARCHIVE_MALFORMED = "archive_malformed"
    #: The metadata snapshot sidecar is missing or unreadable.
    METADATA_SNAPSHOT_MISSING = "metadata_snapshot_missing"
    #: Catch-all for anomalies predating the taxonomy.
    UNSPECIFIED = "unspecified"


@dataclass(frozen=True)
class DegradationPolicy:
    """Error budget and resync behaviour for hostile input.

    Attributes:
        resync: On a desynchronisation (indirect target into unmapped
            space, walk reaching unknown code), scan forward to the next
            structurally-valid anchor, discarding outcome batches whose
            branch context is unknown.  ``False`` restores the legacy
            lenient behaviour (bits stay buffered and may misbind).
        max_anomalies_per_segment: After this many anomalies inside one
            hole-free segment the decoder declares a *synthetic hole*
            (a ``TraceLoss`` with ``synthetic=True``): the damaged span
            is handed to the recovery engine rather than trusted.
            ``None`` disables the budget.
        archive_strict: When reading an on-disk archive
            (:func:`repro.pt.archive.read_archive`), raise on the first
            salvage event instead of degrading.  The default mirrors the
            decode contract: damage becomes loss records and anomaly
            counters, never an exception.
    """

    resync: bool = True
    max_anomalies_per_segment: Optional[int] = 64
    archive_strict: bool = False


@dataclass
class InterpDispatch:
    """One interpreted bytecode: an indirect target into template space."""

    tsc: int
    op: object  # repro.jvm.opcodes.Op
    taken: Optional[bool] = None  # outcome bit for conditional templates


@dataclass
class InterpReturnStub:
    """Compiled code returned to the interpreter (c2i stub target)."""

    tsc: int


@dataclass
class JitSpan:
    """A contiguous walk through compiled code (executed MI addresses)."""

    tsc: int
    addresses: List[int] = field(default_factory=list)


@dataclass
class TraceLoss:
    """A hole: data between ``start_tsc`` and ``end_tsc`` was dropped.

    ``synthetic=True`` marks a hole declared by the decoder's error
    budget (no bytes were physically lost; the span was untrustworthy).
    """

    start_tsc: int
    end_tsc: int
    bytes_lost: int
    synthetic: bool = False


@dataclass
class DecodeAnomaly:
    """Something unexpected in the stream (kept for diagnostics)."""

    tsc: int
    reason: str
    kind: AnomalyKind = AnomalyKind.UNSPECIFIED


DecodedItem = object


@dataclass
class DecodeStats:
    packets: int = 0
    tips: int = 0
    tnt_bits: int = 0
    losses: int = 0
    anomalies: int = 0
    walked_instructions: int = 0
    # --- degradation accounting -----------------------------------------
    #: Synthetic holes declared by the error budget.
    synthetic_holes: int = 0
    #: Walks abandoned before completion (by TIP, FUP, loss, or budget).
    walks_abandoned: int = 0
    #: Per-kind anomaly counts (sums to ``anomalies``).
    by_kind: Dict[AnomalyKind, int] = field(default_factory=dict)
    # --- outcome-bit conservation (consumed+orphaned+discarded+dropped+
    #     unused always equals tnt_bits; the reconciliation property test
    #     pins this invariant) ---------------------------------------------
    #: Bits bound to a conditional dispatch or a walked ``jcc``.
    tnt_consumed: int = 0
    #: Bits in batches rejected as post-loss orphans.
    tnt_orphaned: int = 0
    #: Bits in batches discarded while desynchronised (resync scan).
    tnt_discarded: int = 0
    #: Buffered bits cleared by a loss or synthetic hole.
    tnt_dropped_on_loss: int = 0
    #: Bits still buffered when the stream ended.
    tnt_unused: int = 0


# Event-kind codes for the batch decoder's class->kind memo: one
# ``issubclass`` walk per distinct packet class, then a dict hit per
# entry.  Order of the walk mirrors :meth:`EventDecoder._on_packet`'s
# isinstance dispatch so both engines classify identically.
_EV_TIME, _EV_TNT, _EV_TIP, _EV_FUP, _EV_IGNORE, _EV_UNKNOWN = range(6)

_EVENT_KIND_MEMO: Dict[type, int] = {}


def _event_kind_of(cls: type) -> int:
    kind = _EVENT_KIND_MEMO.get(cls)
    if kind is None:
        if issubclass(cls, TimeRef):
            kind = _EV_TIME
        elif issubclass(cls, ConditionalOutcomes):
            kind = _EV_TNT
        elif issubclass(cls, IndirectTarget):
            kind = _EV_TIP
        elif issubclass(cls, AsyncEvent):
            kind = _EV_FUP
        elif issubclass(cls, (TraceEnable, TraceDisable)):
            kind = _EV_IGNORE
        else:
            kind = _EV_UNKNOWN
        _EVENT_KIND_MEMO[cls] = kind
    return kind


class EventDecoder:
    """Decodes one thread's event stream against a code database.

    A decoder is single-use: one :meth:`decode` call per instance.  When a
    :class:`~repro.core.metrics.MetricsRegistry` is supplied, the decode
    stats are published under ``decode.*`` counters for *tid* when the
    stream has been consumed.  *policy* tunes the degradation behaviour
    (resync + error budget); the default :class:`DegradationPolicy` is
    used when ``None``.
    """

    def __init__(
        self,
        database,
        metrics=None,
        tid: Optional[int] = None,
        policy: Optional[DegradationPolicy] = None,
    ):
        self.database = database
        self.metrics = metrics
        self.tid = tid
        self.policy = policy if policy is not None else DegradationPolicy()
        self.stats = DecodeStats()
        self._items: List[DecodedItem] = []
        self._bits = deque()
        # Pending interpreted conditional waiting for its outcome bit.
        self._pending_cond: Optional[InterpDispatch] = None
        # Suspended machine walk: (span, next_address) waiting for bits.
        self._walk: Optional[Tuple[JitSpan, int]] = None
        # Between a loss record and the next indirect target the stream
        # has no anchor: outcome bits arriving there belong to branches
        # whose context was dropped and must not bind to later
        # conditionals.
        self._post_loss = False
        # Resync state: set when the stream desynchronises (unmapped
        # target, walk into unknown code); cleared by the next
        # structurally-valid anchor.  While set, outcome batches are
        # discarded.
        self._desync = False
        # Error-budget state for the current hole-free segment.
        self._segment_anomalies = 0
        self._segment_anomaly_start: Optional[int] = None

    # -------------------------------------------------------------------- API
    def decode(
        self, stream: Sequence[Tuple[str, object]]
    ) -> List[DecodedItem]:
        """Decode a merged ``("packet"|"loss", item)`` stream (one thread).

        Never raises on malformed input: unrecognised or corrupt entries
        degrade into :class:`DecodeAnomaly` items (and, under the error
        budget, synthetic holes).
        """
        for entry in stream:
            tsc = 0
            try:
                tag, item = entry
                tsc = getattr(item, "tsc", None)
                if tsc is None:
                    tsc = getattr(item, "start_tsc", 0) or 0
                if tag == "loss":
                    self._on_loss(item)
                elif tag == "packet":
                    self._on_packet(item)
                else:
                    self._note(
                        tsc,
                        AnomalyKind.MALFORMED_ITEM,
                        "unrecognised stream tag %r" % (tag,),
                    )
            except Exception as exc:  # no-crash contract: degrade instead
                self._note(
                    tsc,
                    AnomalyKind.DECODER_ERROR,
                    "decoder error: %r" % (exc,),
                )
            self._maybe_declare_synthetic_hole(tsc)
        self._finish_pending()
        self.stats.tnt_unused += len(self._bits)
        self._publish_metrics()
        return self._items

    # --------------------------------------------------------------- handlers
    def _on_loss(self, loss: LossSpan) -> None:
        self.stats.losses += 1
        self._abandon("data loss", loss.start_tsc)
        self.stats.tnt_dropped_on_loss += len(self._bits)
        self._bits.clear()
        self._post_loss = True
        self._desync = False  # the hole itself is the new segmentation point
        self._segment_anomalies = 0
        self._segment_anomaly_start = None
        self._items.append(
            TraceLoss(
                start_tsc=loss.start_tsc,
                end_tsc=loss.end_tsc,
                bytes_lost=loss.bytes_lost,
            )
        )

    def _on_packet(self, packet) -> None:
        self.stats.packets += 1
        if isinstance(packet, TimeRef):
            return
        if isinstance(packet, ConditionalOutcomes):
            self.stats.tnt_bits += len(packet.bits)
            if self._desync:
                # Resync scan: these bits belong to branches in unknown
                # code; buffering them would misbind later conditionals.
                self.stats.tnt_discarded += len(packet.bits)
                self._note(
                    packet.tsc,
                    AnomalyKind.TNT_DISCARDED_DESYNC,
                    "TNT bits discarded while resynchronising",
                )
                return
            if (
                self._post_loss
                and self._pending_cond is None
                and self._walk is None
            ):
                # Orphan bits: their branches were dropped with the loss;
                # buffering them would misbind the next conditional.
                self.stats.tnt_orphaned += len(packet.bits)
                self._note(
                    packet.tsc,
                    AnomalyKind.ORPHAN_TNT,
                    "orphan TNT bits after loss",
                )
                return
            self._bits.extend(packet.bits)
            self._drain_bits(packet.tsc)
            return
        if isinstance(packet, IndirectTarget):
            self.stats.tips += 1
            self._on_tip(packet)
            return
        if isinstance(packet, AsyncEvent):
            # Asynchronous event: the current flow is interrupted; control
            # resumes at the next indirect target.
            self._abandon("fup", packet.tsc)
            return
        if isinstance(packet, (TraceEnable, TraceDisable)):
            # Benign tracing pauses (e.g. GC) do not move control; the
            # suspended walk stays valid.
            return
        self._note(
            getattr(packet, "tsc", 0) or 0,
            AnomalyKind.MALFORMED_ITEM,
            "unknown packet %r" % (packet,),
        )

    def _on_tip(self, packet: IndirectTarget) -> None:
        target = packet.target
        # An indirect target while a conditional still awaits its bit, or
        # while a walk awaits bits, means the stream is inconsistent
        # (post-loss).
        if self._pending_cond is not None:
            # The bit never arrived (lost): emit with unknown outcome.
            self._note(
                packet.tsc,
                AnomalyKind.CONDITIONAL_WITHOUT_TNT,
                "conditional without TNT bit",
            )
            self._items.append(self._pending_cond)
            self._pending_cond = None
        if self._walk is not None:
            self._note(
                packet.tsc,
                AnomalyKind.WALK_ABANDONED,
                "walk abandoned by TIP",
            )
            self.stats.walks_abandoned += 1
            self._walk = None
        database = self.database
        if database.is_return_stub(target):
            self._anchor()
            self._items.append(InterpReturnStub(tsc=packet.tsc))
            return
        op = database.template_op_at(target)
        if op is not None:
            self._anchor()
            dispatch = InterpDispatch(tsc=packet.tsc, op=op)
            if database.op_is_conditional(op):
                if self._bits:
                    dispatch.taken = self._bits.popleft()
                    self.stats.tnt_consumed += 1
                    self._items.append(dispatch)
                else:
                    self._pending_cond = dispatch
            else:
                self._items.append(dispatch)
            return
        if database.in_code_cache(target):
            self._anchor()
            span = JitSpan(tsc=packet.tsc)
            self._items.append(span)
            self._run_walk(span, target, packet.tsc)
            return
        # Structurally invalid target: the stream is desynchronised.  Do
        # not treat this target as an anchor; under the resync protocol
        # the decoder scans forward to the next valid one.
        self._note(
            packet.tsc,
            AnomalyKind.TIP_UNMAPPED,
            "TIP to unknown address 0x%x" % target,
        )
        if self.policy.resync:
            self._enter_desync()
        else:
            self._post_loss = False  # legacy behaviour: any TIP anchors

    def _anchor(self) -> None:
        """A structurally-valid indirect target re-anchors the stream."""
        self._post_loss = False
        self._desync = False

    def _enter_desync(self) -> None:
        """Start the resync scan: discard context-less outcome backlog."""
        self._desync = True
        self.stats.tnt_discarded += len(self._bits)
        self._bits.clear()

    # ------------------------------------------------------------------- walk
    def _run_walk(self, span: JitSpan, address: int, tsc: int) -> None:
        """Walk compiled code from *address* until input is exhausted."""
        database = self.database
        walked = 0
        while True:
            if walked > MAX_WALK:
                self._note(tsc, AnomalyKind.WALK_BUDGET, "walk budget exceeded")
                return
            mi = database.native_instruction_at(address, tsc)
            if mi is None:
                self._note(
                    tsc,
                    AnomalyKind.WALK_DESYNC,
                    "walk desynchronised at 0x%x" % address,
                )
                if self.policy.resync:
                    self._enter_desync()
                return
            span.addresses.append(address)
            self.stats.walked_instructions += 1
            walked += 1
            kind = mi.kind
            if kind is MIKind.OTHER:
                address = mi.end
            elif kind in (MIKind.JMP_DIRECT, MIKind.CALL_DIRECT):
                address = mi.target
            elif kind is MIKind.COND_BRANCH:
                if not self._bits:
                    # Starve: suspend until more outcome bits arrive.  The
                    # branch address is re-visited on resume.
                    span.addresses.pop()
                    self.stats.walked_instructions -= 1
                    self._walk = (span, address)
                    return
                taken = self._bits.popleft()
                self.stats.tnt_consumed += 1
                address = mi.target if taken else mi.end
            else:
                # Indirect branch / return: the next indirect-target event
                # carries the destination.
                return

    def _drain_bits(self, tsc: int) -> None:
        if self._pending_cond is not None and self._bits:
            self._pending_cond.taken = self._bits.popleft()
            self.stats.tnt_consumed += 1
            self._items.append(self._pending_cond)
            self._pending_cond = None
        if self._walk is not None and self._bits:
            span, address = self._walk
            self._walk = None
            self._run_walk(span, address, tsc)

    # ---------------------------------------------------------------- cleanup
    def _abandon(self, why: str, tsc: Optional[int] = None) -> None:
        if self._pending_cond is not None:
            # Emit with unknown outcome rather than dropping the dispatch
            # -- and record the anomaly, exactly like the TIP flush path,
            # so ``decode.anomalies`` counts every unknown outcome.
            self._note(
                self._pending_cond.tsc if tsc is None else tsc,
                AnomalyKind.CONDITIONAL_WITHOUT_TNT,
                "conditional without TNT bit (%s)" % why,
            )
            self._items.append(self._pending_cond)
            self._pending_cond = None
        if self._walk is not None:
            self.stats.walks_abandoned += 1
            self._walk = None

    def _finish_pending(self) -> None:
        self._abandon("end of stream")

    def _note(self, tsc: int, kind: AnomalyKind, reason: str) -> None:
        self.stats.anomalies += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        if self._segment_anomaly_start is None:
            self._segment_anomaly_start = tsc
        self._segment_anomalies += 1
        self._items.append(DecodeAnomaly(tsc=tsc, reason=reason, kind=kind))

    def _maybe_declare_synthetic_hole(self, tsc: int) -> None:
        """Error budget: too many anomalies in one segment means the span
        cannot be trusted; declare a synthetic hole and hand it to the
        recovery engine (which treats it like a buffer-overflow hole)."""
        limit = self.policy.max_anomalies_per_segment
        if limit is None or self._segment_anomalies < limit:
            return
        start = self._segment_anomaly_start
        start = tsc if start is None else start
        self._segment_anomalies = 0
        self._segment_anomaly_start = None
        self.stats.synthetic_holes += 1
        self._abandon("error budget", tsc)
        self.stats.tnt_dropped_on_loss += len(self._bits)
        self._bits.clear()
        self._post_loss = True
        self._desync = False
        self._items.append(
            TraceLoss(
                start_tsc=start, end_tsc=tsc, bytes_lost=0, synthetic=True
            )
        )

    # ---------------------------------------------------------------- metrics
    def _publish_metrics(self) -> None:
        if self.metrics is None:
            return
        stats = self.stats
        for name, value in (
            ("decode.packets", stats.packets),
            ("decode.tips", stats.tips),
            ("decode.tnt_bits", stats.tnt_bits),
            ("decode.losses", stats.losses),
            ("decode.anomalies", stats.anomalies),
            ("decode.walked_instructions", stats.walked_instructions),
            ("decode.synthetic_holes", stats.synthetic_holes),
            ("decode.walks_abandoned", stats.walks_abandoned),
            ("decode.tnt_consumed", stats.tnt_consumed),
            ("decode.tnt_orphaned", stats.tnt_orphaned),
            ("decode.tnt_discarded", stats.tnt_discarded),
            ("decode.tnt_dropped_on_loss", stats.tnt_dropped_on_loss),
            ("decode.tnt_unused", stats.tnt_unused),
        ):
            if value:
                self.metrics.incr(name, value, tid=self.tid)
        for kind, count in stats.by_kind.items():
            if count:
                self.metrics.incr(
                    "decode.anomaly.%s" % kind.value, count, tid=self.tid
                )


class BatchEventDecoder:
    """Array-core decoder: trace events straight to observed *columns*.

    Functionally identical to :class:`EventDecoder` followed by the
    per-item lifters -- same anomaly taxonomy, same
    :class:`DegradationPolicy` semantics, same :class:`DecodeStats`
    (including the outcome-bit conservation invariant), and the same
    observed steps/holes in the same order (the equivalence suite pins
    this bit-for-bit) -- but organised for throughput:

    * no intermediate ``InterpDispatch``/``JitSpan``/``ObservedStep``
      objects: decode and lift are fused, writing directly into the
      parallel columns of an :class:`repro.core.observed.ObservedColumns`
      sink (duck-typed: ``symbols``/``takens``/``locations``/``sources``/
      ``tscs`` lists plus ``add_hole`` and an ``anomalies`` counter);
    * outcome payloads are kept as one flat bit-run (list + cursor)
      instead of a deque popped one object at a time;
    * compiled-code walks drain block-at-a-time through the database's
      ``walk_block`` cache (straight-line runs end at a conditional,
      an indirect branch, or an epoch-dependent address), with the
      per-block lift templates supplied by *lifter* (duck-typed:
      ``block_template(block)`` and ``lift_one(address, tsc)``, see
      :class:`repro.core.batchflow.JitLifter`); epoch-dependent
      addresses and walks near the :data:`MAX_WALK` budget fall back to
      per-instruction stepping so the degradation semantics stay exact;
    * indirect targets classify through the database's memoized
      ``classify_target`` (:data:`TARGET_STUB`-family codes) instead of
      three range lookups per dispatch, and packet classes resolve to
      event kinds through a module-level ``issubclass`` memo, so any
      frontend's packet types hit the same fast path.

    Like :class:`EventDecoder`, an instance is single-use and never
    raises on malformed input.
    """

    def __init__(
        self,
        database,
        lifter,
        metrics=None,
        tid: Optional[int] = None,
        policy: Optional[DegradationPolicy] = None,
    ):
        self.database = database
        self.lifter = lifter
        self.metrics = metrics
        self.tid = tid
        self.policy = policy if policy is not None else DegradationPolicy()
        self.stats = DecodeStats()
        # Outcome bit-run: a flat list consumed through a cursor
        # (compacted on refill), never one deque hop per bit.
        self._bits: List[bool] = []
        self._cur = 0
        # Pending interpreted conditional: (dispatch_tsc, op).
        self._pending: Optional[Tuple[int, object]] = None
        # Suspended machine walk: (span_start_tsc, next_address).
        self._walk: Optional[Tuple[int, int]] = None
        self._post_loss = False
        self._desync = False
        self._segment_anomalies = 0
        self._segment_anomaly_start: Optional[int] = None
        # Stale debug records encountered while lifting (published once).
        self._stale = 0
        # op -> is-conditional memo (one protocol call per distinct op).
        self._cond_op: Dict[object, bool] = {}
        self._columns = None

    # -------------------------------------------------------------------- API
    def decode_into(self, stream: Sequence[Tuple[str, object]], columns):
        """Decode a merged ``("packet"|"loss", item)`` stream into *columns*.

        Never raises on malformed input; same contract and entry-by-entry
        degradation behaviour as :meth:`EventDecoder.decode`.
        """
        self.feed(stream, columns)
        return self.finish()

    def adopt_state(self, previous: "BatchEventDecoder") -> "BatchEventDecoder":
        """Take over *previous*'s mid-stream state (streaming handoff).

        Used when the metadata database grows mid-stream: a fresh decoder
        bound to the enlarged database adopts the old decoder's mutable
        state -- cumulative stats, outcome-bit remainder, pending
        conditional, suspended walk, degradation flags, and the columns
        sink -- so the concatenated ``feed`` calls across both decoders
        behave exactly like one decoder over the concatenated stream.
        """
        self.stats = previous.stats
        self._bits = previous._bits
        self._cur = previous._cur
        self._pending = previous._pending
        self._walk = previous._walk
        self._post_loss = previous._post_loss
        self._desync = previous._desync
        self._segment_anomalies = previous._segment_anomalies
        self._segment_anomaly_start = previous._segment_anomaly_start
        self._stale = previous._stale
        self._cond_op = previous._cond_op
        self._columns = previous._columns
        return self

    def export_state(self) -> dict:
        """The mid-stream state as a picklable dict (checkpointing).

        Covers exactly the fields :meth:`adopt_state` hands over --
        everything that differs between a fresh decoder and one that
        has fed part of a stream.  The values are live references, not
        copies: callers that persist the dict (the JPSC checkpoint)
        pickle it immediately, which deep-copies on the way out.
        """
        return {
            "stats": self.stats,
            "bits": self._bits,
            "cur": self._cur,
            "pending": self._pending,
            "walk": self._walk,
            "post_loss": self._post_loss,
            "desync": self._desync,
            "segment_anomalies": self._segment_anomalies,
            "segment_anomaly_start": self._segment_anomaly_start,
            "stale": self._stale,
            "cond_op": self._cond_op,
            "columns": self._columns,
        }

    def restore_state(self, state: dict) -> "BatchEventDecoder":
        """Adopt an :meth:`export_state` payload (checkpoint restore).

        The decoder must be freshly constructed against the same
        database contents the exporting decoder last saw; feeding then
        resumes exactly where the exporter stopped.
        """
        self.stats = state["stats"]
        self._bits = state["bits"]
        self._cur = state["cur"]
        self._pending = state["pending"]
        self._walk = state["walk"]
        self._post_loss = state["post_loss"]
        self._desync = state["desync"]
        self._segment_anomalies = state["segment_anomalies"]
        self._segment_anomaly_start = state["segment_anomaly_start"]
        self._stale = state["stale"]
        self._cond_op = state["cond_op"]
        self._columns = state["columns"]
        return self

    def feed(self, stream: Sequence[Tuple[str, object]], columns):
        """Decode one chunk of the merged stream; resumable.

        Mid-stream state (outcome remainder, pending conditional,
        suspended walk, loss/desync flags) carries across calls, so
        feeding a stream in arbitrary chunks then calling :meth:`finish`
        produces exactly the columns and stats of one :meth:`decode_into`
        call over the whole stream.  *columns* must be the same sink on
        every call.
        """
        self._columns = columns
        stats = self.stats
        limit = self.policy.max_anomalies_per_segment
        budgeted = limit is not None
        # Hot-loop locals: the indirect-target fast path below handles
        # the (dominant) clean-stream dispatches without a method call or
        # re-lookup; any pending state or unusual target falls through to
        # the full handlers, which replicate the object decoder exactly.
        classify = self.database.classify_target
        tip_memo: Dict[int, Tuple[int, object]] = {}
        cond_memo = self._cond_op
        op_is_conditional = self.database.op_is_conditional
        symbols_append = columns.symbols.append
        takens_append = columns.takens.append
        locations_append = columns.locations.append
        sources_append = columns.sources.append
        tscs_append = columns.tscs.append
        kind_memo = _EVENT_KIND_MEMO
        kind_of = _event_kind_of
        for entry in stream:
            tsc = 0
            try:
                tag, item = entry
                if tag == "packet":
                    stats.packets += 1
                    cls = item.__class__
                    ekind = kind_memo.get(cls)
                    if ekind is None:
                        ekind = kind_of(cls)
                    if ekind == _EV_TIP:
                        tsc = item.tsc
                        stats.tips += 1
                        if self._pending is None and self._walk is None:
                            target = item.target
                            hit = tip_memo.get(target)
                            if hit is None:
                                hit = tip_memo[target] = classify(target)
                            code = hit[0]
                            if code == TARGET_TEMPLATE:
                                op = hit[1]
                                self._post_loss = False
                                self._desync = False
                                cond = cond_memo.get(op)
                                if cond is None:
                                    cond = cond_memo[op] = op_is_conditional(op)
                                if cond:
                                    if self._cur < len(self._bits):
                                        taken = self._bits[self._cur]
                                        self._cur += 1
                                        stats.tnt_consumed += 1
                                    else:
                                        self._pending = (tsc, op)
                                        continue
                                else:
                                    taken = None
                                symbols_append(op)
                                takens_append(taken)
                                locations_append(None)
                                sources_append("interp")
                                tscs_append(tsc)
                            elif code == TARGET_STUB:
                                self._post_loss = False
                                self._desync = False
                            elif code == TARGET_CODE:
                                self._post_loss = False
                                self._desync = False
                                self._run_walk(target, tsc, tsc)
                            else:
                                self._tip_unmapped(target, tsc)
                        else:
                            self._on_tip(item.target, tsc)
                    elif ekind == _EV_TNT:
                        tsc = item.tsc
                        self._on_tnt(item.bits, tsc)
                    elif ekind == _EV_TIME or ekind == _EV_IGNORE:
                        tsc = item.tsc
                    elif ekind == _EV_FUP:
                        tsc = item.tsc
                        self._abandon("fup", tsc)
                    else:
                        tsc = getattr(item, "tsc", None)
                        if tsc is None:
                            tsc = getattr(item, "start_tsc", 0) or 0
                        self._on_packet_slow(item, tsc)
                elif tag == "loss":
                    tsc = getattr(item, "tsc", None)
                    if tsc is None:
                        tsc = getattr(item, "start_tsc", 0) or 0
                    self._on_loss(item)
                else:
                    tsc = getattr(item, "tsc", None)
                    if tsc is None:
                        tsc = getattr(item, "start_tsc", 0) or 0
                    self._note(
                        tsc,
                        AnomalyKind.MALFORMED_ITEM,
                        "unrecognised stream tag %r" % (tag,),
                    )
            except Exception as exc:  # no-crash contract: degrade instead
                self._note(
                    tsc,
                    AnomalyKind.DECODER_ERROR,
                    "decoder error: %r" % (exc,),
                )
            if budgeted and self._segment_anomalies >= limit:
                self._declare_synthetic_hole(tsc)
        return columns

    def finish(self):
        """End of stream: flush suspended state and publish metrics."""
        self._abandon("end of stream")
        self.stats.tnt_unused += len(self._bits) - self._cur
        self._publish_metrics()
        return self._columns

    # --------------------------------------------------------------- handlers
    def _on_packet_slow(self, packet, tsc: int) -> None:
        """Entries no event base claims (injected fakes, foreign objects):
        replicate the object decoder's isinstance dispatch order."""
        if isinstance(packet, TimeRef):
            return
        if isinstance(packet, ConditionalOutcomes):
            self._on_tnt(packet.bits, tsc)
            return
        if isinstance(packet, IndirectTarget):
            self.stats.tips += 1
            self._on_tip(packet.target, tsc)
            return
        if isinstance(packet, AsyncEvent):
            self._abandon("fup", tsc)
            return
        if isinstance(packet, (TraceEnable, TraceDisable)):
            return
        self._note(
            tsc, AnomalyKind.MALFORMED_ITEM, "unknown packet %r" % (packet,)
        )

    def _on_tnt(self, tnt_bits, tsc: int) -> None:
        stats = self.stats
        count = len(tnt_bits)
        stats.tnt_bits += count
        if self._desync:
            stats.tnt_discarded += count
            self._note(
                tsc,
                AnomalyKind.TNT_DISCARDED_DESYNC,
                "TNT bits discarded while resynchronising",
            )
            return
        if (
            self._post_loss
            and self._pending is None
            and self._walk is None
        ):
            stats.tnt_orphaned += count
            self._note(
                tsc, AnomalyKind.ORPHAN_TNT, "orphan TNT bits after loss"
            )
            return
        bits = self._bits
        if self._cur:
            del bits[: self._cur]
            self._cur = 0
        bits.extend(tnt_bits)
        if self._pending is not None and self._cur < len(bits):
            taken = bits[self._cur]
            self._cur += 1
            stats.tnt_consumed += 1
            ptsc, op = self._pending
            self._pending = None
            cols = self._columns
            cols.symbols.append(op)
            cols.takens.append(taken)
            cols.locations.append(None)
            cols.sources.append("interp")
            cols.tscs.append(ptsc)
        if self._walk is not None and self._cur < len(bits):
            span_tsc, address = self._walk
            self._walk = None
            self._run_walk(address, span_tsc, tsc)

    def _on_tip(self, target: int, tsc: int) -> None:
        if self._pending is not None:
            self._note(
                tsc,
                AnomalyKind.CONDITIONAL_WITHOUT_TNT,
                "conditional without TNT bit",
            )
            self._emit_pending()
        if self._walk is not None:
            self._note(
                tsc, AnomalyKind.WALK_ABANDONED, "walk abandoned by TIP"
            )
            self.stats.walks_abandoned += 1
            self._walk = None
        code, op = self.database.classify_target(target)
        if code == TARGET_TEMPLATE:
            self._post_loss = False
            self._desync = False
            cond = self._cond_op.get(op)
            if cond is None:
                cond = self.database.op_is_conditional(op)
                self._cond_op[op] = cond
            if cond and self._cur >= len(self._bits):
                self._pending = (tsc, op)
                return
            if cond:
                taken = self._bits[self._cur]
                self._cur += 1
                self.stats.tnt_consumed += 1
            else:
                taken = None
            cols = self._columns
            cols.symbols.append(op)
            cols.takens.append(taken)
            cols.locations.append(None)
            cols.sources.append("interp")
            cols.tscs.append(tsc)
            return
        if code == TARGET_STUB:
            # Return into the interpreter: re-anchors, lifts to nothing.
            self._post_loss = False
            self._desync = False
            return
        if code == TARGET_CODE:
            self._post_loss = False
            self._desync = False
            self._run_walk(target, tsc, tsc)
            return
        self._tip_unmapped(target, tsc)

    def _tip_unmapped(self, target: int, tsc: int) -> None:
        """Structurally invalid indirect target: note + resync protocol."""
        self._note(
            tsc,
            AnomalyKind.TIP_UNMAPPED,
            "TIP to unknown address 0x%x" % target,
        )
        if self.policy.resync:
            self._enter_desync()
        else:
            self._post_loss = False  # legacy behaviour: any TIP anchors

    def _enter_desync(self) -> None:
        self._desync = True
        self.stats.tnt_discarded += len(self._bits) - self._cur
        self._bits.clear()
        self._cur = 0

    def _on_loss(self, loss: LossSpan) -> None:
        stats = self.stats
        stats.losses += 1
        self._abandon("data loss", loss.start_tsc)
        stats.tnt_dropped_on_loss += len(self._bits) - self._cur
        self._bits.clear()
        self._cur = 0
        self._post_loss = True
        self._desync = False  # the hole itself is the new segmentation point
        self._segment_anomalies = 0
        self._segment_anomaly_start = None
        self._columns.add_hole(
            loss.start_tsc, loss.end_tsc, loss.bytes_lost, False
        )

    # ------------------------------------------------------------------- walk
    def _run_walk(self, address: int, span_tsc: int, tsc: int) -> None:
        """Walk compiled code from *address*, emitting lifted steps.

        *span_tsc* is the walk's start timestamp: like the object
        pipeline, lifted steps carry (and debug info resolves against)
        the span's creation time even across starvation resumes, while
        *tsc* (the current packet's time) drives epoch selection and
        anomaly records.
        """
        database = self.database
        walk_block = database.walk_block
        lifter = self.lifter
        template_of = lifter.block_template
        resync = self.policy.resync
        cols = self._columns
        symbols = cols.symbols
        takens = cols.takens
        locations = cols.locations
        sources = cols.sources
        tscs = cols.tscs
        bits = self._bits
        avail = len(bits)
        cur = self._cur
        walked = 0
        consumed = 0
        stale = 0
        try:
            while True:
                if walked > MAX_WALK:
                    self._note(
                        tsc, AnomalyKind.WALK_BUDGET, "walk budget exceeded"
                    )
                    return
                block = walk_block(address)
                kind = block.kind
                count = len(block.addresses)
                if kind == BLOCK_EPOCH or walked + count > MAX_WALK:
                    # Per-instruction stepping: epoch-dependent address
                    # (needs the real tsc) or near the walk budget (needs
                    # the exact per-instruction boundary semantics).
                    mi = database.native_instruction_at(address, tsc)
                    if mi is None:
                        self._note(
                            tsc,
                            AnomalyKind.WALK_DESYNC,
                            "walk desynchronised at 0x%x" % address,
                        )
                        if resync:
                            self._cur = cur
                            self._enter_desync()
                            cur = self._cur
                        return
                    mikind = mi.kind
                    if mikind is MIKind.COND_BRANCH and cur >= avail:
                        # Starve: suspend until more outcome bits arrive.
                        # The branch address is re-visited on resume.
                        self._walk = (span_tsc, address)
                        return
                    step = lifter.lift_one(address, span_tsc)
                    if step is not None:
                        if step is LIFT_STALE:
                            stale += 1
                        else:
                            symbols.append(step[0])
                            takens.append(None)
                            locations.append(step[1])
                            sources.append("jit")
                            tscs.append(span_tsc)
                    walked += 1
                    if mikind is MIKind.OTHER:
                        address = mi.end
                    elif (
                        mikind is MIKind.JMP_DIRECT
                        or mikind is MIKind.CALL_DIRECT
                    ):
                        address = mi.target
                    elif mikind is MIKind.COND_BRANCH:
                        taken = bits[cur]
                        cur += 1
                        consumed += 1
                        address = mi.target if taken else mi.end
                    else:
                        # Indirect branch / return: awaits the next TIP.
                        return
                    continue
                if kind == BLOCK_COND:
                    if cur >= avail:
                        # Starve mid-block: emit everything before the
                        # conditional, suspend at the conditional itself.
                        template = template_of(block)
                        body = template.body_count
                        if body:
                            symbols += template.body_ops
                            takens += template.body_nones
                            locations += template.body_locs
                            sources += template.body_jits
                            tscs += (span_tsc,) * body
                        stale += template.body_stale
                        walked += count - 1
                        self._walk = (span_tsc, block.addresses[-1])
                        return
                    template = template_of(block)
                    if template.count:
                        symbols += template.ops
                        takens += template.nones
                        locations += template.locs
                        sources += template.jits
                        tscs += (span_tsc,) * template.count
                    stale += template.stale
                    walked += count
                    taken = bits[cur]
                    cur += 1
                    consumed += 1
                    address = block.taken_ip if taken else block.fall_ip
                    continue
                # END / CHAIN / UNKNOWN: the whole block executes first.
                template = template_of(block)
                if template.count:
                    symbols += template.ops
                    takens += template.nones
                    locations += template.locs
                    sources += template.jits
                    tscs += (span_tsc,) * template.count
                stale += template.stale
                walked += count
                if kind == BLOCK_END:
                    return
                if kind == BLOCK_CHAIN:
                    address = block.next_ip
                    continue
                # BLOCK_UNKNOWN: the walk desynchronises at next_ip.
                self._note(
                    tsc,
                    AnomalyKind.WALK_DESYNC,
                    "walk desynchronised at 0x%x" % block.next_ip,
                )
                if resync:
                    self._cur = cur
                    self._enter_desync()
                    cur = self._cur
                return
        finally:
            self._cur = cur
            stats = self.stats
            stats.walked_instructions += walked
            stats.tnt_consumed += consumed
            if stale:
                self._stale += stale

    # ---------------------------------------------------------------- cleanup
    def _emit_pending(self) -> None:
        """Emit the pending conditional with unknown outcome."""
        ptsc, op = self._pending
        self._pending = None
        cols = self._columns
        cols.symbols.append(op)
        cols.takens.append(None)
        cols.locations.append(None)
        cols.sources.append("interp")
        cols.tscs.append(ptsc)

    def _abandon(self, why: str, tsc: Optional[int] = None) -> None:
        if self._pending is not None:
            self._note(
                self._pending[0] if tsc is None else tsc,
                AnomalyKind.CONDITIONAL_WITHOUT_TNT,
                "conditional without TNT bit (%s)" % why,
            )
            self._emit_pending()
        if self._walk is not None:
            self.stats.walks_abandoned += 1
            self._walk = None

    def _note(self, tsc: int, kind: AnomalyKind, reason: str) -> None:
        stats = self.stats
        stats.anomalies += 1
        stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        if self._segment_anomaly_start is None:
            self._segment_anomaly_start = tsc
        self._segment_anomalies += 1
        self._columns.anomalies += 1

    def _declare_synthetic_hole(self, tsc: int) -> None:
        """The error budget tripped: declare a synthetic hole (same state
        transitions as :meth:`EventDecoder._maybe_declare_synthetic_hole`)."""
        start = self._segment_anomaly_start
        start = tsc if start is None else start
        self._segment_anomalies = 0
        self._segment_anomaly_start = None
        self.stats.synthetic_holes += 1
        self._abandon("error budget", tsc)
        self.stats.tnt_dropped_on_loss += len(self._bits) - self._cur
        self._bits.clear()
        self._cur = 0
        self._post_loss = True
        self._desync = False
        self._columns.add_hole(start, tsc, 0, True)

    # ---------------------------------------------------------------- metrics
    def _publish_metrics(self) -> None:
        if self.metrics is None:
            return
        stats = self.stats
        for name, value in (
            ("decode.packets", stats.packets),
            ("decode.tips", stats.tips),
            ("decode.tnt_bits", stats.tnt_bits),
            ("decode.losses", stats.losses),
            ("decode.anomalies", stats.anomalies),
            ("decode.walked_instructions", stats.walked_instructions),
            ("decode.synthetic_holes", stats.synthetic_holes),
            ("decode.walks_abandoned", stats.walks_abandoned),
            ("decode.tnt_consumed", stats.tnt_consumed),
            ("decode.tnt_orphaned", stats.tnt_orphaned),
            ("decode.tnt_discarded", stats.tnt_discarded),
            ("decode.tnt_dropped_on_loss", stats.tnt_dropped_on_loss),
            ("decode.tnt_unused", stats.tnt_unused),
        ):
            if value:
                self.metrics.incr(name, value, tid=self.tid)
        for kind, count in stats.by_kind.items():
            if count:
                self.metrics.incr(
                    "decode.anomaly.%s" % kind.value, count, tid=self.tid
                )
        if self._stale:
            self.metrics.incr(
                "lift.stale_debug_entries", self._stale, tid=self.tid
            )
