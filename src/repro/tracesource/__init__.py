"""Pluggable trace-source layer: the format-agnostic decode core.

JPortal's pipeline consumes *branch events*, not packets of a specific
ISA's trace format.  This package holds everything a trace frontend
shares:

* :mod:`repro.tracesource.events` -- the normalised event vocabulary
  (conditional-outcome batches, indirect targets, async events,
  enable/disable, time references, loss spans) that frontend packet
  types subclass;
* :mod:`repro.tracesource.engine` -- the two decode engines
  (:class:`~repro.tracesource.engine.EventDecoder` object core,
  :class:`~repro.tracesource.engine.BatchEventDecoder` array core) that
  turn one thread's event stream into native control flow, plus the
  anomaly taxonomy and degradation policy;
* the :class:`TraceFrontend` registry below, which the pipeline,
  streaming service, and collection stack use to resolve a format name
  (``"pt"``, ``"etrace"``) into its encoder and decoder classes.

A *trace source* is anything that yields the merged
``("packet"|"loss", item)`` stream the engines consume: an encoder's
output split per thread (:func:`repro.core.multicore.split_by_thread`),
an RPT2 archive reader, or a live streaming tail.  The protocol is
structural -- packets satisfy it by subclassing the event bases, and
sources by yielding tagged tuples in TSC order.

Builtin frontends register themselves on import; :func:`get_frontend`
imports them lazily so this layer never depends on a concrete format at
module-import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from .projection import ProjectionModel  # noqa: F401  (re-exported)
from .engine import (  # noqa: F401  (re-exported: the shared engine API)
    AnomalyKind,
    BatchEventDecoder,
    DecodeAnomaly,
    DecodeStats,
    DegradationPolicy,
    EventDecoder,
    InterpDispatch,
    InterpReturnStub,
    JitSpan,
    TraceLoss,
)
from .events import (  # noqa: F401  (re-exported: the event vocabulary)
    AsyncEvent,
    ConditionalOutcomes,
    IndirectTarget,
    LossSpan,
    TimeRef,
    TraceDisable,
    TraceEnable,
)


@dataclass(frozen=True)
class TraceFrontend:
    """One trace format's plug into the shared core.

    Attributes:
        name: Registry key; also the archive format tag (``REC_FORMAT``)
            and :attr:`repro.pt.perf.PTConfig.frontend` value.
        make_encoder: ``(config or None) -> encoder``; the encoder's
            ``encode(events)`` maps runtime branch events to this
            format's packets (all subclassing the event bases).
        encode_core: ``(events, config=None) -> list of packets``; the
            stateless one-shot convenience used by benchmarks.
        object_decoder: :class:`~repro.tracesource.engine.EventDecoder`
            subclass for this format (engine ``"object"``).
        batch_decoder:
            :class:`~repro.tracesource.engine.BatchEventDecoder`
            subclass for this format (engine ``"array"``).
        encoder_config_type: The config dataclass ``make_encoder``
            accepts; collection passes a foreign config type as ``None``
            so format defaults apply.
        projection_model: The frontend's static
            :class:`~repro.tracesource.projection.ProjectionModel` --
            what its packets reveal about control flow and at what byte
            cost.  The analysis layer refuses frontends without one.
    """

    name: str
    make_encoder: Callable[[object], object]
    encode_core: Callable[..., Sequence[object]]
    object_decoder: type
    batch_decoder: type
    encoder_config_type: type
    projection_model: Optional[ProjectionModel] = None


_FRONTENDS: Dict[str, TraceFrontend] = {}


def register_frontend(frontend: TraceFrontend) -> TraceFrontend:
    """Register *frontend* under its name (last registration wins)."""
    _FRONTENDS[frontend.name] = frontend
    return frontend


def get_frontend(name: str) -> TraceFrontend:
    """Resolve a frontend by name, importing builtins on first use.

    Raises ``KeyError`` for unknown names; callers that must not crash
    (the archive salvage path) catch it and degrade.
    """
    frontend = _FRONTENDS.get(name)
    if frontend is None and name in ("pt", "etrace"):
        # Builtins register themselves at import; importing here keeps
        # the tracesource layer free of format dependencies.
        if name == "pt":
            from .. import pt  # noqa: F401
        else:
            from .. import etrace  # noqa: F401
        frontend = _FRONTENDS.get(name)
    if frontend is None:
        raise KeyError("unknown trace frontend %r" % (name,))
    return frontend


def get_projection_model(name: str) -> ProjectionModel:
    """Resolve a frontend's static projection model by name.

    Raises ``KeyError`` when the frontend is unknown, ``ValueError``
    when it registered without a model -- the static analysis layer
    cannot reason about a format that never declared its projection.
    """
    frontend = get_frontend(name)
    if frontend.projection_model is None:
        raise ValueError(
            "trace frontend %r exports no ProjectionModel" % (name,)
        )
    return frontend.projection_model


def frontend_names() -> Sequence[str]:
    """Names of the frontends registered so far (builtins may be lazy)."""
    return tuple(sorted(_FRONTENDS))
