"""Normalised branch-event vocabulary every trace frontend maps onto.

JPortal's decode/reconstruct/recover core is ISA-agnostic: it consumes
*branch outcomes* and *indirect targets*, not Intel PT packets (paper
Sections 3-5).  This module names the five event families the decode
engine (:mod:`repro.tracesource.engine`) actually dispatches on, as
frozen-dataclass base classes a frontend's packet types subclass:

* :class:`ConditionalOutcomes` -- a batch of packed taken/not-taken
  bits, in branch-retirement order (PT ``TNT``; E-Trace branch maps);
* :class:`IndirectTarget` -- the destination IP of an indirect branch,
  call, or return (PT ``TIP``; E-Trace address packets);
* :class:`AsyncEvent` -- an asynchronous control transfer (fault,
  interrupt); the current flow is interrupted and resumes at the next
  indirect target (PT ``FUP``; E-Trace trap packets);
* :class:`TraceEnable` / :class:`TraceDisable` -- tracing pauses and
  resumes that do *not* move control (PT ``PGE``/``PGD``; E-Trace
  support packets); the engine ignores them;
* :class:`TimeRef` -- a pure timestamp reference (PT ``TSC`` packets;
  E-Trace time packets); ignored by the engine.

Loss is not a packet: :class:`LossSpan` models the sideband records the
collection stack emits when its buffer overflows (``perf_record_aux``
with the truncated flag, or an E-Trace encoder overflow message), which
the pipeline uses to localise data loss.

Every event carries the generation-time ``tsc`` as metadata; real
decoders interpolate between time packets, an imprecision modelled by
sideband timestamp jitter instead (see DESIGN.md).  Subclasses must be
re-decorated ``@dataclass(frozen=True)`` and expose a ``size`` property
(their encoded byte count) for the ring-buffer loss model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ConditionalOutcomes:
    """A batch of conditional-branch outcomes, one bit per branch."""

    tsc: int
    bits: Tuple[bool, ...]


@dataclass(frozen=True)
class IndirectTarget:
    """The destination IP of an indirect branch / call / return."""

    tsc: int
    target: int


@dataclass(frozen=True)
class AsyncEvent:
    """Source IP of an asynchronous event (fault, interrupt)."""

    tsc: int
    ip: int


@dataclass(frozen=True)
class TraceEnable:
    """Tracing resumes at ``ip``; control did not move."""

    tsc: int
    ip: int


@dataclass(frozen=True)
class TraceDisable:
    """Tracing pauses at ``ip``; control did not move."""

    tsc: int
    ip: int


@dataclass(frozen=True)
class TimeRef:
    """A pure timestamp reference packet."""

    tsc: int


@dataclass(frozen=True)
class LossSpan:
    """A hole in the trace: data in ``[start_tsc, end_tsc]`` was lost."""

    start_tsc: int
    end_tsc: int
    bytes_lost: int
    packets_lost: int
