"""Bytecode instruction set of the simulated JVM.

The set is a faithful subset of the real JVM ISA, chosen so that every
mechanism JPortal's algorithms depend on is present:

* ``_n``-specialised opcodes (``iload_0`` ... ``iconst_5``) exist as distinct
  opcodes because the HotSpot template interpreter gives each its own
  machine-code template -- a PT ``TIP`` packet therefore reveals the
  specialised form but not the operand of the generic form.
* Conditional branches, unconditional jumps, switches, calls, and returns
  are classified by :class:`Kind`, which drives both the PT event model
  (what packet a dynamic instance produces) and the abstraction tiers of
  the paper's Definitions 4.2 and 5.2.
* Field/array/object opcodes exist so that workloads have realistic shape;
  they carry no control flow.

Every opcode is described by an :class:`OpInfo` record in :data:`OP_TABLE`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Kind(enum.Enum):
    """Control-flow classification of an opcode."""

    NORMAL = "normal"  # straight-line: falls through to the next bci
    COND = "cond"  # two-way conditional branch (TNT bit)
    GOTO = "goto"  # unconditional direct jump
    SWITCH = "switch"  # multi-way branch (indirect jump in JITed code)
    CALL = "call"  # method invocation
    RETURN = "return"  # method return
    THROW = "throw"  # athrow: transfers to a handler or unwinds


class Op(enum.IntEnum):
    """Opcodes of the simulated ISA (values are arbitrary but stable)."""

    NOP = 0
    ACONST_NULL = 1
    ICONST_M1 = 2
    ICONST_0 = 3
    ICONST_1 = 4
    ICONST_2 = 5
    ICONST_3 = 6
    ICONST_4 = 7
    ICONST_5 = 8
    BIPUSH = 9
    SIPUSH = 10
    LDC = 11

    ILOAD = 20
    ILOAD_0 = 21
    ILOAD_1 = 22
    ILOAD_2 = 23
    ILOAD_3 = 24
    ALOAD = 25
    ALOAD_0 = 26
    ALOAD_1 = 27
    ALOAD_2 = 28
    ALOAD_3 = 29

    ISTORE = 40
    ISTORE_0 = 41
    ISTORE_1 = 42
    ISTORE_2 = 43
    ISTORE_3 = 44
    ASTORE = 45
    ASTORE_0 = 46
    ASTORE_1 = 47
    ASTORE_2 = 48
    ASTORE_3 = 49

    IALOAD = 60
    IASTORE = 61
    AALOAD = 62
    AASTORE = 63
    ARRAYLENGTH = 64
    NEWARRAY = 65
    ANEWARRAY = 66

    POP = 80
    DUP = 81
    DUP_X1 = 82
    SWAP = 83

    IADD = 96
    ISUB = 100
    IMUL = 104
    IDIV = 108
    IREM = 112
    INEG = 116
    ISHL = 120
    ISHR = 122
    IAND = 126
    IOR = 128
    IXOR = 130
    IINC = 132

    IFEQ = 153
    IFNE = 154
    IFLT = 155
    IFGE = 156
    IFGT = 157
    IFLE = 158
    IF_ICMPEQ = 159
    IF_ICMPNE = 160
    IF_ICMPLT = 161
    IF_ICMPGE = 162
    IF_ICMPGT = 163
    IF_ICMPLE = 164
    IF_ACMPEQ = 165
    IF_ACMPNE = 166
    IFNULL = 198
    IFNONNULL = 199

    GOTO = 167
    TABLESWITCH = 170
    LOOKUPSWITCH = 171

    IRETURN = 172
    ARETURN = 176
    RETURN = 177

    GETSTATIC = 178
    PUTSTATIC = 179
    GETFIELD = 180
    PUTFIELD = 181

    INVOKEVIRTUAL = 182
    INVOKESPECIAL = 183
    INVOKESTATIC = 184

    NEW = 187
    ATHROW = 191


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode.

    Attributes:
        op: The opcode.
        mnemonic: Lower-case assembly name, e.g. ``"iload_0"``.
        kind: Control-flow classification.
        operands: Schema of assembler operands, a tuple drawn from
            ``{"index", "const", "target", "methodref", "fieldref",
            "classref", "switch"}``.
        pops: Number of operand-stack slots consumed (``-1`` = depends on
            the call signature).
        pushes: Number of operand-stack slots produced (``-1`` likewise).
    """

    op: Op
    mnemonic: str
    kind: Kind
    operands: tuple
    pops: int
    pushes: int

    @property
    def is_control(self) -> bool:
        """True if dynamic instances are tier-2 (control) instructions."""
        return self.kind is not Kind.NORMAL

    @property
    def is_call_like(self) -> bool:
        """True if dynamic instances are tier-1 (call-structure) instructions."""
        return self.kind in (Kind.CALL, Kind.RETURN)


def _info(op, mnemonic, kind, operands=(), pops=0, pushes=0):
    return OpInfo(op, mnemonic, kind, tuple(operands), pops, pushes)


OP_TABLE = {
    Op.NOP: _info(Op.NOP, "nop", Kind.NORMAL),
    Op.ACONST_NULL: _info(Op.ACONST_NULL, "aconst_null", Kind.NORMAL, pushes=1),
    Op.ICONST_M1: _info(Op.ICONST_M1, "iconst_m1", Kind.NORMAL, pushes=1),
    Op.ICONST_0: _info(Op.ICONST_0, "iconst_0", Kind.NORMAL, pushes=1),
    Op.ICONST_1: _info(Op.ICONST_1, "iconst_1", Kind.NORMAL, pushes=1),
    Op.ICONST_2: _info(Op.ICONST_2, "iconst_2", Kind.NORMAL, pushes=1),
    Op.ICONST_3: _info(Op.ICONST_3, "iconst_3", Kind.NORMAL, pushes=1),
    Op.ICONST_4: _info(Op.ICONST_4, "iconst_4", Kind.NORMAL, pushes=1),
    Op.ICONST_5: _info(Op.ICONST_5, "iconst_5", Kind.NORMAL, pushes=1),
    Op.BIPUSH: _info(Op.BIPUSH, "bipush", Kind.NORMAL, ("const",), pushes=1),
    Op.SIPUSH: _info(Op.SIPUSH, "sipush", Kind.NORMAL, ("const",), pushes=1),
    Op.LDC: _info(Op.LDC, "ldc", Kind.NORMAL, ("const",), pushes=1),
    Op.ILOAD: _info(Op.ILOAD, "iload", Kind.NORMAL, ("index",), pushes=1),
    Op.ILOAD_0: _info(Op.ILOAD_0, "iload_0", Kind.NORMAL, pushes=1),
    Op.ILOAD_1: _info(Op.ILOAD_1, "iload_1", Kind.NORMAL, pushes=1),
    Op.ILOAD_2: _info(Op.ILOAD_2, "iload_2", Kind.NORMAL, pushes=1),
    Op.ILOAD_3: _info(Op.ILOAD_3, "iload_3", Kind.NORMAL, pushes=1),
    Op.ALOAD: _info(Op.ALOAD, "aload", Kind.NORMAL, ("index",), pushes=1),
    Op.ALOAD_0: _info(Op.ALOAD_0, "aload_0", Kind.NORMAL, pushes=1),
    Op.ALOAD_1: _info(Op.ALOAD_1, "aload_1", Kind.NORMAL, pushes=1),
    Op.ALOAD_2: _info(Op.ALOAD_2, "aload_2", Kind.NORMAL, pushes=1),
    Op.ALOAD_3: _info(Op.ALOAD_3, "aload_3", Kind.NORMAL, pushes=1),
    Op.ISTORE: _info(Op.ISTORE, "istore", Kind.NORMAL, ("index",), pops=1),
    Op.ISTORE_0: _info(Op.ISTORE_0, "istore_0", Kind.NORMAL, pops=1),
    Op.ISTORE_1: _info(Op.ISTORE_1, "istore_1", Kind.NORMAL, pops=1),
    Op.ISTORE_2: _info(Op.ISTORE_2, "istore_2", Kind.NORMAL, pops=1),
    Op.ISTORE_3: _info(Op.ISTORE_3, "istore_3", Kind.NORMAL, pops=1),
    Op.ASTORE: _info(Op.ASTORE, "astore", Kind.NORMAL, ("index",), pops=1),
    Op.ASTORE_0: _info(Op.ASTORE_0, "astore_0", Kind.NORMAL, pops=1),
    Op.ASTORE_1: _info(Op.ASTORE_1, "astore_1", Kind.NORMAL, pops=1),
    Op.ASTORE_2: _info(Op.ASTORE_2, "astore_2", Kind.NORMAL, pops=1),
    Op.ASTORE_3: _info(Op.ASTORE_3, "astore_3", Kind.NORMAL, pops=1),
    Op.IALOAD: _info(Op.IALOAD, "iaload", Kind.NORMAL, pops=2, pushes=1),
    Op.IASTORE: _info(Op.IASTORE, "iastore", Kind.NORMAL, pops=3),
    Op.AALOAD: _info(Op.AALOAD, "aaload", Kind.NORMAL, pops=2, pushes=1),
    Op.AASTORE: _info(Op.AASTORE, "aastore", Kind.NORMAL, pops=3),
    Op.ARRAYLENGTH: _info(Op.ARRAYLENGTH, "arraylength", Kind.NORMAL, pops=1, pushes=1),
    Op.NEWARRAY: _info(Op.NEWARRAY, "newarray", Kind.NORMAL, pops=1, pushes=1),
    Op.ANEWARRAY: _info(
        Op.ANEWARRAY, "anewarray", Kind.NORMAL, ("classref",), pops=1, pushes=1
    ),
    Op.POP: _info(Op.POP, "pop", Kind.NORMAL, pops=1),
    Op.DUP: _info(Op.DUP, "dup", Kind.NORMAL, pops=1, pushes=2),
    Op.DUP_X1: _info(Op.DUP_X1, "dup_x1", Kind.NORMAL, pops=2, pushes=3),
    Op.SWAP: _info(Op.SWAP, "swap", Kind.NORMAL, pops=2, pushes=2),
    Op.IADD: _info(Op.IADD, "iadd", Kind.NORMAL, pops=2, pushes=1),
    Op.ISUB: _info(Op.ISUB, "isub", Kind.NORMAL, pops=2, pushes=1),
    Op.IMUL: _info(Op.IMUL, "imul", Kind.NORMAL, pops=2, pushes=1),
    Op.IDIV: _info(Op.IDIV, "idiv", Kind.NORMAL, pops=2, pushes=1),
    Op.IREM: _info(Op.IREM, "irem", Kind.NORMAL, pops=2, pushes=1),
    Op.INEG: _info(Op.INEG, "ineg", Kind.NORMAL, pops=1, pushes=1),
    Op.ISHL: _info(Op.ISHL, "ishl", Kind.NORMAL, pops=2, pushes=1),
    Op.ISHR: _info(Op.ISHR, "ishr", Kind.NORMAL, pops=2, pushes=1),
    Op.IAND: _info(Op.IAND, "iand", Kind.NORMAL, pops=2, pushes=1),
    Op.IOR: _info(Op.IOR, "ior", Kind.NORMAL, pops=2, pushes=1),
    Op.IXOR: _info(Op.IXOR, "ixor", Kind.NORMAL, pops=2, pushes=1),
    Op.IINC: _info(Op.IINC, "iinc", Kind.NORMAL, ("index", "const")),
    Op.IFEQ: _info(Op.IFEQ, "ifeq", Kind.COND, ("target",), pops=1),
    Op.IFNE: _info(Op.IFNE, "ifne", Kind.COND, ("target",), pops=1),
    Op.IFLT: _info(Op.IFLT, "iflt", Kind.COND, ("target",), pops=1),
    Op.IFGE: _info(Op.IFGE, "ifge", Kind.COND, ("target",), pops=1),
    Op.IFGT: _info(Op.IFGT, "ifgt", Kind.COND, ("target",), pops=1),
    Op.IFLE: _info(Op.IFLE, "ifle", Kind.COND, ("target",), pops=1),
    Op.IF_ICMPEQ: _info(Op.IF_ICMPEQ, "if_icmpeq", Kind.COND, ("target",), pops=2),
    Op.IF_ICMPNE: _info(Op.IF_ICMPNE, "if_icmpne", Kind.COND, ("target",), pops=2),
    Op.IF_ICMPLT: _info(Op.IF_ICMPLT, "if_icmplt", Kind.COND, ("target",), pops=2),
    Op.IF_ICMPGE: _info(Op.IF_ICMPGE, "if_icmpge", Kind.COND, ("target",), pops=2),
    Op.IF_ICMPGT: _info(Op.IF_ICMPGT, "if_icmpgt", Kind.COND, ("target",), pops=2),
    Op.IF_ICMPLE: _info(Op.IF_ICMPLE, "if_icmple", Kind.COND, ("target",), pops=2),
    Op.IF_ACMPEQ: _info(Op.IF_ACMPEQ, "if_acmpeq", Kind.COND, ("target",), pops=2),
    Op.IF_ACMPNE: _info(Op.IF_ACMPNE, "if_acmpne", Kind.COND, ("target",), pops=2),
    Op.IFNULL: _info(Op.IFNULL, "ifnull", Kind.COND, ("target",), pops=1),
    Op.IFNONNULL: _info(Op.IFNONNULL, "ifnonnull", Kind.COND, ("target",), pops=1),
    Op.GOTO: _info(Op.GOTO, "goto", Kind.GOTO, ("target",)),
    Op.TABLESWITCH: _info(Op.TABLESWITCH, "tableswitch", Kind.SWITCH, ("switch",), pops=1),
    Op.LOOKUPSWITCH: _info(
        Op.LOOKUPSWITCH, "lookupswitch", Kind.SWITCH, ("switch",), pops=1
    ),
    Op.IRETURN: _info(Op.IRETURN, "ireturn", Kind.RETURN, pops=1),
    Op.ARETURN: _info(Op.ARETURN, "areturn", Kind.RETURN, pops=1),
    Op.RETURN: _info(Op.RETURN, "return", Kind.RETURN),
    Op.GETSTATIC: _info(Op.GETSTATIC, "getstatic", Kind.NORMAL, ("fieldref",), pushes=1),
    Op.PUTSTATIC: _info(Op.PUTSTATIC, "putstatic", Kind.NORMAL, ("fieldref",), pops=1),
    Op.GETFIELD: _info(
        Op.GETFIELD, "getfield", Kind.NORMAL, ("fieldref",), pops=1, pushes=1
    ),
    Op.PUTFIELD: _info(Op.PUTFIELD, "putfield", Kind.NORMAL, ("fieldref",), pops=2),
    Op.INVOKEVIRTUAL: _info(
        Op.INVOKEVIRTUAL, "invokevirtual", Kind.CALL, ("methodref",), pops=-1, pushes=-1
    ),
    Op.INVOKESPECIAL: _info(
        Op.INVOKESPECIAL, "invokespecial", Kind.CALL, ("methodref",), pops=-1, pushes=-1
    ),
    Op.INVOKESTATIC: _info(
        Op.INVOKESTATIC, "invokestatic", Kind.CALL, ("methodref",), pops=-1, pushes=-1
    ),
    Op.NEW: _info(Op.NEW, "new", Kind.NORMAL, ("classref",), pushes=1),
    Op.ATHROW: _info(Op.ATHROW, "athrow", Kind.THROW, pops=1),
}

# Mnemonic -> Op lookup (used by the assembler's text front end).
MNEMONICS = {info.mnemonic: op for op, info in OP_TABLE.items()}

# Generic <-> specialised load/store/const forms. The assembler rewrites
# generic forms with small operands into the specialised ones, mirroring
# javac output and giving the template interpreter distinct templates.
SPECIALIZED = {
    (Op.ILOAD, 0): Op.ILOAD_0,
    (Op.ILOAD, 1): Op.ILOAD_1,
    (Op.ILOAD, 2): Op.ILOAD_2,
    (Op.ILOAD, 3): Op.ILOAD_3,
    (Op.ALOAD, 0): Op.ALOAD_0,
    (Op.ALOAD, 1): Op.ALOAD_1,
    (Op.ALOAD, 2): Op.ALOAD_2,
    (Op.ALOAD, 3): Op.ALOAD_3,
    (Op.ISTORE, 0): Op.ISTORE_0,
    (Op.ISTORE, 1): Op.ISTORE_1,
    (Op.ISTORE, 2): Op.ISTORE_2,
    (Op.ISTORE, 3): Op.ISTORE_3,
    (Op.ASTORE, 0): Op.ASTORE_0,
    (Op.ASTORE, 1): Op.ASTORE_1,
    (Op.ASTORE, 2): Op.ASTORE_2,
    (Op.ASTORE, 3): Op.ASTORE_3,
}

# Specialised opcode -> (generic opcode, implied operand).
DESPECIALIZED = {spec: (gen, idx) for (gen, idx), spec in SPECIALIZED.items()}

_ICONSTS = {
    -1: Op.ICONST_M1,
    0: Op.ICONST_0,
    1: Op.ICONST_1,
    2: Op.ICONST_2,
    3: Op.ICONST_3,
    4: Op.ICONST_4,
    5: Op.ICONST_5,
}

ICONST_VALUE = {op: value for value, op in _ICONSTS.items()}


def info(op: Op) -> OpInfo:
    """Return the :class:`OpInfo` record for *op*."""
    return OP_TABLE[op]


def iconst_for(value: int):
    """Return the specialised ``iconst`` opcode for *value*, or ``None``."""
    return _ICONSTS.get(value)


def specialize(op: Op, index: int):
    """Return the ``_n`` form of a load/store for *index*, or ``None``."""
    return SPECIALIZED.get((op, index))


def tier(op: Op) -> int:
    """Abstraction tier of *op* per Definition 5.2.

    Tier 1 contains call-structure instructions (calls, returns, throws --
    a throw transfers across frames like a return); tier 2 additionally
    contains all other control instructions (branches, jumps, switches);
    tier 3 is everything (concrete).
    """
    kind = OP_TABLE[op].kind
    if kind in (Kind.CALL, Kind.RETURN, Kind.THROW):
        return 1
    if kind in (Kind.COND, Kind.GOTO, Kind.SWITCH):
        return 2
    return 3
