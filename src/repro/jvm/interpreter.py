"""Semantic execution of bytecode instructions.

:func:`step` executes exactly one instruction's *data* effect on a frame
(operand stack + locals + heap) and reports the *control* effect as an
:class:`Outcome`.  The runtime (:mod:`repro.jvm.runtime`) owns frames,
call/return/throw handling, tiering, and hardware-event emission -- the
same semantic step therefore drives both the template interpreter and the
execution of JIT-compiled machine code, which keeps the two modes
behaviourally identical (as they are on a real JVM) while letting them
emit completely different PT event streams.

Values are Python ints (wrapped to 32-bit signed), ``None`` (null),
:class:`JObject` and :class:`JArray` references.  Implicit runtime
exceptions (divide by zero, null dereference, array bounds) are produced
exactly where a JVM would produce them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .instructions import Instruction, MethodRef
from .model import JMethod, JProgram
from .opcodes import DESPECIALIZED, ICONST_VALUE, Kind, Op


def i32(value: int) -> int:
    """Wrap *value* to 32-bit signed two's-complement, like JVM ints."""
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


class JObject:
    """A heap object: class name plus named fields."""

    __slots__ = ("class_name", "fields")

    def __init__(self, class_name: str):
        self.class_name = class_name
        self.fields: Dict[str, Any] = {}

    def __repr__(self):
        return "<%s>" % self.class_name


class JArray:
    """A heap array of fixed length."""

    __slots__ = ("elements",)

    def __init__(self, length: int, fill: Any = 0):
        self.elements: List[Any] = [fill] * length

    def __len__(self):
        return len(self.elements)

    def __repr__(self):
        return "<array[%d]>" % len(self.elements)


class TrapKind(enum.Enum):
    """Implicit runtime exceptions."""

    ARITHMETIC = "java.lang.ArithmeticException"
    NULL_POINTER = "java.lang.NullPointerException"
    ARRAY_BOUNDS = "java.lang.ArrayIndexOutOfBoundsException"
    NEGATIVE_ARRAY = "java.lang.NegativeArraySizeException"


class OutcomeKind(enum.Enum):
    FALL = "fall"  # continue at bci + 1
    BRANCH = "branch"  # conditional: taken/not-taken
    JUMP = "jump"  # goto
    SWITCH = "switch"  # multi-way
    CALL = "call"  # invoke: runtime must push a callee frame
    RETURN = "return"  # pop this frame
    THROW = "throw"  # dispatch to a handler / unwind


@dataclass
class Outcome:
    """Control effect of one executed instruction.

    Attributes:
        kind: What happened.
        next_bci: Intra-method continuation (fall/branch/jump/switch).
        taken: For BRANCH, whether the branch was taken (the TNT bit).
        callee: For CALL, the runtime-resolved callee method.
        args: For CALL, argument values (receiver first for instance calls).
        value: For RETURN, the returned value (``None`` for void).
        exception: For THROW, the thrown object.
    """

    kind: OutcomeKind
    next_bci: int = -1
    taken: bool = False
    callee: Optional[JMethod] = None
    args: Tuple = ()
    value: Any = None
    exception: Optional[JObject] = None


@dataclass
class Frame:
    """One semantic activation record."""

    method: JMethod
    locals: List[Any]
    stack: List[Any] = field(default_factory=list)
    bci: int = 0

    @classmethod
    def for_call(cls, method: JMethod, args: Tuple) -> "Frame":
        local_slots: List[Any] = list(args)
        local_slots.extend([0] * (method.max_locals - len(args)))
        return cls(method=method, locals=local_slots)

    def push(self, value: Any) -> None:
        self.stack.append(value)

    def pop(self) -> Any:
        return self.stack.pop()


class Statics:
    """Program-wide static fields, keyed by ``Class.field``."""

    def __init__(self):
        self._values: Dict[str, Any] = {}

    def get(self, key: str) -> Any:
        return self._values.get(key, 0)

    def put(self, key: str, value: Any) -> None:
        self._values[key] = value


def _trap(kind: TrapKind) -> Outcome:
    return Outcome(kind=OutcomeKind.THROW, exception=JObject(kind.value))


_COMPARES = {
    Op.IFEQ: lambda v: v == 0,
    Op.IFNE: lambda v: v != 0,
    Op.IFLT: lambda v: v < 0,
    Op.IFGE: lambda v: v >= 0,
    Op.IFGT: lambda v: v > 0,
    Op.IFLE: lambda v: v <= 0,
}

_ICOMPARES = {
    Op.IF_ICMPEQ: lambda a, b: a == b,
    Op.IF_ICMPNE: lambda a, b: a != b,
    Op.IF_ICMPLT: lambda a, b: a < b,
    Op.IF_ICMPGE: lambda a, b: a >= b,
    Op.IF_ICMPGT: lambda a, b: a > b,
    Op.IF_ICMPLE: lambda a, b: a <= b,
}

_ARITH = {
    Op.IADD: lambda a, b: a + b,
    Op.ISUB: lambda a, b: a - b,
    Op.IMUL: lambda a, b: a * b,
    Op.ISHL: lambda a, b: a << (b & 31),
    Op.ISHR: lambda a, b: a >> (b & 31),
    Op.IAND: lambda a, b: a & b,
    Op.IOR: lambda a, b: a | b,
    Op.IXOR: lambda a, b: a ^ b,
}


def step(frame: Frame, program: JProgram, statics: Statics) -> Outcome:
    """Execute the instruction at ``frame.bci``; report its control effect.

    Mutates the frame's stack/locals and the heap, but never ``frame.bci``
    or the frame stack -- those belong to the runtime.
    """
    inst = frame.method.code[frame.bci]
    op = inst.op
    stack = frame.stack

    # --- constants ---------------------------------------------------------
    if op in ICONST_VALUE:
        stack.append(ICONST_VALUE[op])
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op in (Op.BIPUSH, Op.SIPUSH, Op.LDC):
        stack.append(i32(inst.const))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.ACONST_NULL:
        stack.append(None)
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.NOP:
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)

    # --- locals -------------------------------------------------------------
    if op in DESPECIALIZED:
        generic, index = DESPECIALIZED[op]
        op, inst_index = generic, index
    else:
        inst_index = inst.index
    if op in (Op.ILOAD, Op.ALOAD):
        stack.append(frame.locals[inst_index])
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op in (Op.ISTORE, Op.ASTORE):
        frame.locals[inst_index] = stack.pop()
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.IINC:
        frame.locals[inst_index] = i32(frame.locals[inst_index] + inst.const)
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)

    # --- stack shuffling -----------------------------------------------------
    if op is Op.POP:
        stack.pop()
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.DUP:
        stack.append(stack[-1])
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.DUP_X1:
        top = stack.pop()
        second = stack.pop()
        stack.extend((top, second, top))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.SWAP:
        stack[-1], stack[-2] = stack[-2], stack[-1]
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)

    # --- arithmetic -----------------------------------------------------------
    if op in _ARITH:
        right = stack.pop()
        left = stack.pop()
        stack.append(i32(_ARITH[op](left, right)))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op in (Op.IDIV, Op.IREM):
        right = stack.pop()
        left = stack.pop()
        if right == 0:
            return _trap(TrapKind.ARITHMETIC)
        # JVM semantics: truncate toward zero.
        quotient = abs(left) // abs(right)
        if (left < 0) != (right < 0):
            quotient = -quotient
        if op is Op.IDIV:
            stack.append(i32(quotient))
        else:
            stack.append(i32(left - quotient * right))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.INEG:
        stack.append(i32(-stack.pop()))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)

    # --- branches --------------------------------------------------------------
    if op in _COMPARES:
        taken = _COMPARES[op](stack.pop())
        return Outcome(
            OutcomeKind.BRANCH,
            next_bci=inst.target if taken else frame.bci + 1,
            taken=taken,
        )
    if op in _ICOMPARES:
        right = stack.pop()
        left = stack.pop()
        taken = _ICOMPARES[op](left, right)
        return Outcome(
            OutcomeKind.BRANCH,
            next_bci=inst.target if taken else frame.bci + 1,
            taken=taken,
        )
    if op in (Op.IF_ACMPEQ, Op.IF_ACMPNE):
        right = stack.pop()
        left = stack.pop()
        same = left is right
        taken = same if op is Op.IF_ACMPEQ else not same
        return Outcome(
            OutcomeKind.BRANCH,
            next_bci=inst.target if taken else frame.bci + 1,
            taken=taken,
        )
    if op in (Op.IFNULL, Op.IFNONNULL):
        value = stack.pop()
        taken = (value is None) if op is Op.IFNULL else (value is not None)
        return Outcome(
            OutcomeKind.BRANCH,
            next_bci=inst.target if taken else frame.bci + 1,
            taken=taken,
        )
    if op is Op.GOTO:
        return Outcome(OutcomeKind.JUMP, next_bci=inst.target)
    if op in (Op.TABLESWITCH, Op.LOOKUPSWITCH):
        key = stack.pop()
        return Outcome(OutcomeKind.SWITCH, next_bci=inst.switch.target_for(key))

    # --- arrays ------------------------------------------------------------------
    if op in (Op.NEWARRAY, Op.ANEWARRAY):
        length = stack.pop()
        if length < 0:
            return _trap(TrapKind.NEGATIVE_ARRAY)
        stack.append(JArray(length, fill=0 if op is Op.NEWARRAY else None))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op in (Op.IALOAD, Op.AALOAD):
        index = stack.pop()
        array = stack.pop()
        if not isinstance(array, JArray):
            return _trap(TrapKind.NULL_POINTER)
        if not 0 <= index < len(array):
            return _trap(TrapKind.ARRAY_BOUNDS)
        stack.append(array.elements[index])
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op in (Op.IASTORE, Op.AASTORE):
        value = stack.pop()
        index = stack.pop()
        array = stack.pop()
        if not isinstance(array, JArray):
            return _trap(TrapKind.NULL_POINTER)
        if not 0 <= index < len(array):
            return _trap(TrapKind.ARRAY_BOUNDS)
        array.elements[index] = i32(value) if op is Op.IASTORE else value
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.ARRAYLENGTH:
        array = stack.pop()
        if not isinstance(array, JArray):
            return _trap(TrapKind.NULL_POINTER)
        stack.append(len(array))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)

    # --- objects and fields ---------------------------------------------------------
    if op is Op.NEW:
        stack.append(JObject(inst.classref))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.GETFIELD:
        receiver = stack.pop()
        if not isinstance(receiver, JObject):
            return _trap(TrapKind.NULL_POINTER)
        stack.append(receiver.fields.get(inst.fieldref.field_name, 0))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.PUTFIELD:
        value = stack.pop()
        receiver = stack.pop()
        if not isinstance(receiver, JObject):
            return _trap(TrapKind.NULL_POINTER)
        receiver.fields[inst.fieldref.field_name] = value
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.GETSTATIC:
        stack.append(statics.get(str(inst.fieldref)))
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)
    if op is Op.PUTSTATIC:
        statics.put(str(inst.fieldref), stack.pop())
        return Outcome(OutcomeKind.FALL, next_bci=frame.bci + 1)

    # --- calls, returns, throws --------------------------------------------------------
    if op in (Op.INVOKESTATIC, Op.INVOKESPECIAL, Op.INVOKEVIRTUAL):
        ref: MethodRef = inst.methodref
        args = tuple(stack[len(stack) - ref.arg_count :]) if ref.arg_count else ()
        del stack[len(stack) - ref.arg_count :]
        if op is Op.INVOKEVIRTUAL:
            receiver = args[0] if args else None
            if not isinstance(receiver, JObject):
                return _trap(TrapKind.NULL_POINTER)
            callee = program.resolve_virtual(receiver.class_name, ref.method_name)
        else:
            callee = program.method(ref.class_name, ref.method_name)
        return Outcome(OutcomeKind.CALL, callee=callee, args=args)
    if op in (Op.IRETURN, Op.ARETURN):
        return Outcome(OutcomeKind.RETURN, value=stack.pop())
    if op is Op.RETURN:
        return Outcome(OutcomeKind.RETURN, value=None)
    if op is Op.ATHROW:
        exception = stack.pop()
        if not isinstance(exception, JObject):
            return _trap(TrapKind.NULL_POINTER)
        return Outcome(OutcomeKind.THROW, exception=exception)

    raise NotImplementedError("unhandled opcode %s" % inst)
