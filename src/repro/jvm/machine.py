"""Machine-level instruction and branch-event model.

This is the level Intel PT observes.  Two things live here:

* :class:`MachineInstruction` -- the synthetic native instructions the JIT
  emits (and whose control-transfer behaviour the PT decoder must walk);
* branch *events* -- the dynamic occurrences a tracing run produces, which
  the PT encoder (:mod:`repro.pt.encoder`) turns into packets:

  - an **indirect** control transfer (indirect jump/call, return,
    interpreter template dispatch) produces a ``TIP`` packet carrying the
    target IP;
  - a **conditional** branch produces one ``TNT`` bit;
  - a **direct** jump or call produces *no* packet (the target is
    statically known from the code, as in real PT);
  - tracing start/stop produce ``PGE``/``PGD``;
  - asynchronous events (thread preemption) produce ``FUP``.

Every event carries a TSC timestamp (a global step counter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union


class MIKind(enum.Enum):
    """Control-transfer class of a machine instruction."""

    OTHER = "other"  # no control transfer: falls through
    COND_BRANCH = "jcc"  # conditional direct branch (TNT)
    JMP_DIRECT = "jmp"  # unconditional direct jump (no packet)
    JMP_INDIRECT = "jmp*"  # indirect jump (TIP)
    CALL_DIRECT = "call"  # direct call (no packet; return address pushed)
    CALL_INDIRECT = "call*"  # indirect call (TIP)
    RET = "ret"  # return (TIP)


@dataclass(frozen=True)
class MachineInstruction:
    """One synthetic native instruction.

    Attributes:
        address: Start IP.
        size: Encoded size in bytes.
        kind: Control-transfer class.
        target: Static target IP for direct jumps/calls/branches.
        text: Human-readable disassembly (for dumps and debugging).
    """

    address: int
    size: int
    kind: MIKind
    target: Optional[int] = None
    text: str = ""

    @property
    def end(self) -> int:
        return self.address + self.size

    @property
    def is_branch(self) -> bool:
        return self.kind is not MIKind.OTHER

    def __str__(self):
        label = self.text or self.kind.value
        if self.target is not None:
            return "0x%x: %s 0x%x" % (self.address, label, self.target)
        return "0x%x: %s" % (self.address, label)


# --------------------------------------------------------------------- events
@dataclass(frozen=True)
class BranchEvent:
    """Base class for dynamic branch events observed by the tracer."""

    tsc: int


@dataclass(frozen=True)
class TipEvent(BranchEvent):
    """Indirect control transfer to ``target`` (produces a TIP packet)."""

    target: int = 0


@dataclass(frozen=True)
class TntEvent(BranchEvent):
    """Conditional branch outcome (one TNT bit)."""

    taken: bool = False


@dataclass(frozen=True)
class EnableEvent(BranchEvent):
    """Tracing enabled at ``ip`` (PGE)."""

    ip: int = 0


@dataclass(frozen=True)
class DisableEvent(BranchEvent):
    """Tracing disabled at ``ip`` (PGD)."""

    ip: int = 0


@dataclass(frozen=True)
class FupEvent(BranchEvent):
    """Asynchronous event at source ``ip`` (FUP packet)."""

    ip: int = 0


HardwareEvent = Union[TipEvent, TntEvent, EnableEvent, DisableEvent, FupEvent]


# ------------------------------------------------------------------- sideband
@dataclass(frozen=True)
class ThreadSwitchRecord:
    """Sideband record: at ``tsc``, ``core`` started running ``tid``.

    The paper (Section 6) uses exactly this information to segregate each
    core's PT data into per-thread streams.
    """

    core: int
    tid: int
    tsc: int


@dataclass(frozen=True)
class AddressSpace:
    """Layout constants of the simulated process.

    The template interpreter and the JIT code cache both live inside
    ``code_cache``: JPortal programs PT's IP filter to exactly this range
    (Section 6, "Filtering Out Irrelevant Data").
    """

    template_base: int = 0x7FA000000000
    template_limit: int = 0x7FA000100000
    code_cache_base: int = 0x7FA419000000
    code_cache_limit: int = 0x7FA419800000
    # Addresses outside the filter range (JVM runtime stubs, GC, syscalls):
    runtime_base: int = 0x7FB000000000

    def in_filter_range(self, ip: int) -> bool:
        return (
            self.template_base <= ip < self.template_limit
            or self.code_cache_base <= ip < self.code_cache_limit
        )

    def in_template_space(self, ip: int) -> bool:
        return self.template_base <= ip < self.template_limit

    def in_code_cache(self, ip: int) -> bool:
        return self.code_cache_base <= ip < self.code_cache_limit


DEFAULT_ADDRESS_SPACE = AddressSpace()
