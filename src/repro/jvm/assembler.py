"""Label-based bytecode assembler.

The assembler is the construction API for workloads and tests::

    asm = MethodAssembler("Test", "fun", arg_count=2, returns_value=True)
    asm.load(0)
    asm.ifeq("else")
    asm.load(1).const(1).iadd().store(1).goto("join")
    asm.label("else")
    asm.load(1).const(2).isub().store(1)
    asm.label("join")
    asm.load(1).ireturn()
    method = asm.build()

Branch targets are symbolic labels resolved at :meth:`MethodAssembler.build`
time; generic loads/stores/constants are rewritten to their ``_n``
specialised forms exactly as javac would emit them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .instructions import FieldRef, Instruction, MethodRef, SwitchTable
from .model import ExceptionHandler, JMethod, ProgramError
from .opcodes import Op, iconst_for, specialize

LabelOrBci = Union[str, int]


class AssemblyError(Exception):
    """Raised on malformed assembly (unknown labels, bad operands)."""


class MethodAssembler:
    """Builds one :class:`~repro.jvm.model.JMethod` instruction by instruction.

    All emit methods return ``self`` so instructions can be chained.
    """

    def __init__(
        self,
        class_name: str,
        name: str,
        arg_count: int,
        returns_value: bool,
        max_locals: Optional[int] = None,
        is_static: bool = True,
    ):
        self._class_name = class_name
        self._name = name
        self._arg_count = arg_count
        self._returns_value = returns_value
        self._max_locals = max_locals
        self._is_static = is_static
        # Each pending entry: (op, operand dict with possibly-symbolic targets)
        self._pending: List[Tuple[Op, dict]] = []
        self._labels: Dict[str, int] = {}
        self._handlers: List[Tuple[LabelOrBci, LabelOrBci, LabelOrBci]] = []
        self._max_local_seen = arg_count

    # ----------------------------------------------------------------- labels
    def label(self, name: str) -> "MethodAssembler":
        """Bind *name* to the next instruction's bci."""
        if name in self._labels:
            raise AssemblyError("duplicate label %r" % name)
        self._labels[name] = len(self._pending)
        return self

    def here(self) -> int:
        """The bci of the next instruction to be emitted."""
        return len(self._pending)

    # ------------------------------------------------------------------ emits
    def emit(self, op: Op, **operands) -> "MethodAssembler":
        self._pending.append((op, operands))
        return self

    def _track_local(self, index: int) -> None:
        if index < 0:
            raise AssemblyError("negative local index %d" % index)
        self._max_local_seen = max(self._max_local_seen, index + 1)

    def const(self, value: int) -> "MethodAssembler":
        """Push an int constant, picking the tightest encoding."""
        spec = iconst_for(value)
        if spec is not None:
            return self.emit(spec)
        if -128 <= value < 128:
            return self.emit(Op.BIPUSH, const=value)
        if -32768 <= value < 32768:
            return self.emit(Op.SIPUSH, const=value)
        return self.emit(Op.LDC, const=value)

    def aconst_null(self) -> "MethodAssembler":
        return self.emit(Op.ACONST_NULL)

    def load(self, index: int) -> "MethodAssembler":
        """Load int local *index* (specialised when possible)."""
        self._track_local(index)
        spec = specialize(Op.ILOAD, index)
        if spec is not None:
            return self.emit(spec)
        return self.emit(Op.ILOAD, index=index)

    def store(self, index: int) -> "MethodAssembler":
        self._track_local(index)
        spec = specialize(Op.ISTORE, index)
        if spec is not None:
            return self.emit(spec)
        return self.emit(Op.ISTORE, index=index)

    def aload(self, index: int) -> "MethodAssembler":
        self._track_local(index)
        spec = specialize(Op.ALOAD, index)
        if spec is not None:
            return self.emit(spec)
        return self.emit(Op.ALOAD, index=index)

    def astore(self, index: int) -> "MethodAssembler":
        self._track_local(index)
        spec = specialize(Op.ASTORE, index)
        if spec is not None:
            return self.emit(spec)
        return self.emit(Op.ASTORE, index=index)

    def iinc(self, index: int, delta: int = 1) -> "MethodAssembler":
        self._track_local(index)
        return self.emit(Op.IINC, index=index, const=delta)

    # Arithmetic / stack ops: one method per mnemonic, generated explicitly
    # for discoverability (dir(asm) shows the ISA).
    def nop(self):
        return self.emit(Op.NOP)

    def iadd(self):
        return self.emit(Op.IADD)

    def isub(self):
        return self.emit(Op.ISUB)

    def imul(self):
        return self.emit(Op.IMUL)

    def idiv(self):
        return self.emit(Op.IDIV)

    def irem(self):
        return self.emit(Op.IREM)

    def ineg(self):
        return self.emit(Op.INEG)

    def ishl(self):
        return self.emit(Op.ISHL)

    def ishr(self):
        return self.emit(Op.ISHR)

    def iand(self):
        return self.emit(Op.IAND)

    def ior(self):
        return self.emit(Op.IOR)

    def ixor(self):
        return self.emit(Op.IXOR)

    def pop(self):
        return self.emit(Op.POP)

    def dup(self):
        return self.emit(Op.DUP)

    def dup_x1(self):
        return self.emit(Op.DUP_X1)

    def swap(self):
        return self.emit(Op.SWAP)

    # Arrays / objects / fields
    def newarray(self):
        return self.emit(Op.NEWARRAY)

    def anewarray(self, class_name: str):
        return self.emit(Op.ANEWARRAY, classref=class_name)

    def iaload(self):
        return self.emit(Op.IALOAD)

    def iastore(self):
        return self.emit(Op.IASTORE)

    def aaload(self):
        return self.emit(Op.AALOAD)

    def aastore(self):
        return self.emit(Op.AASTORE)

    def arraylength(self):
        return self.emit(Op.ARRAYLENGTH)

    def new(self, class_name: str):
        return self.emit(Op.NEW, classref=class_name)

    def getfield(self, class_name: str, field_name: str):
        return self.emit(Op.GETFIELD, fieldref=FieldRef(class_name, field_name))

    def putfield(self, class_name: str, field_name: str):
        return self.emit(Op.PUTFIELD, fieldref=FieldRef(class_name, field_name))

    def getstatic(self, class_name: str, field_name: str):
        return self.emit(Op.GETSTATIC, fieldref=FieldRef(class_name, field_name))

    def putstatic(self, class_name: str, field_name: str):
        return self.emit(Op.PUTSTATIC, fieldref=FieldRef(class_name, field_name))

    # Branches
    def _branch(self, op: Op, target: LabelOrBci) -> "MethodAssembler":
        return self.emit(op, target=target)

    def ifeq(self, target):
        return self._branch(Op.IFEQ, target)

    def ifne(self, target):
        return self._branch(Op.IFNE, target)

    def iflt(self, target):
        return self._branch(Op.IFLT, target)

    def ifge(self, target):
        return self._branch(Op.IFGE, target)

    def ifgt(self, target):
        return self._branch(Op.IFGT, target)

    def ifle(self, target):
        return self._branch(Op.IFLE, target)

    def if_icmpeq(self, target):
        return self._branch(Op.IF_ICMPEQ, target)

    def if_icmpne(self, target):
        return self._branch(Op.IF_ICMPNE, target)

    def if_icmplt(self, target):
        return self._branch(Op.IF_ICMPLT, target)

    def if_icmpge(self, target):
        return self._branch(Op.IF_ICMPGE, target)

    def if_icmpgt(self, target):
        return self._branch(Op.IF_ICMPGT, target)

    def if_icmple(self, target):
        return self._branch(Op.IF_ICMPLE, target)

    def if_acmpeq(self, target):
        return self._branch(Op.IF_ACMPEQ, target)

    def if_acmpne(self, target):
        return self._branch(Op.IF_ACMPNE, target)

    def ifnull(self, target):
        return self._branch(Op.IFNULL, target)

    def ifnonnull(self, target):
        return self._branch(Op.IFNONNULL, target)

    def goto(self, target):
        return self._branch(Op.GOTO, target)

    def tableswitch(self, cases: Dict[int, LabelOrBci], default: LabelOrBci):
        return self.emit(Op.TABLESWITCH, switch_cases=dict(cases), switch_default=default)

    def lookupswitch(self, cases: Dict[int, LabelOrBci], default: LabelOrBci):
        return self.emit(
            Op.LOOKUPSWITCH, switch_cases=dict(cases), switch_default=default
        )

    # Calls / returns / throw
    def invokestatic(self, class_name, method_name, arg_count, returns_value=True):
        return self.emit(
            Op.INVOKESTATIC,
            methodref=MethodRef(class_name, method_name, arg_count, returns_value),
        )

    def invokevirtual(self, class_name, method_name, arg_count, returns_value=True):
        """*arg_count* includes the receiver."""
        return self.emit(
            Op.INVOKEVIRTUAL,
            methodref=MethodRef(class_name, method_name, arg_count, returns_value),
        )

    def invokespecial(self, class_name, method_name, arg_count, returns_value=False):
        return self.emit(
            Op.INVOKESPECIAL,
            methodref=MethodRef(class_name, method_name, arg_count, returns_value),
        )

    def ireturn(self):
        return self.emit(Op.IRETURN)

    def areturn(self):
        return self.emit(Op.ARETURN)

    def return_(self):
        return self.emit(Op.RETURN)

    def athrow(self):
        return self.emit(Op.ATHROW)

    # Exception table
    def handler(self, start: LabelOrBci, end: LabelOrBci, target: LabelOrBci):
        """Register a handler covering ``[start, end)``."""
        self._handlers.append((start, end, target))
        return self

    # ------------------------------------------------------------------ build
    def _resolve(self, target: LabelOrBci) -> int:
        if isinstance(target, int):
            return target
        try:
            return self._labels[target]
        except KeyError:
            raise AssemblyError(
                "undefined label %r in %s.%s" % (target, self._class_name, self._name)
            ) from None

    def build(self) -> JMethod:
        """Resolve labels and produce the finished method."""
        code: List[Instruction] = []
        for bci, (op, operands) in enumerate(self._pending):
            fields = dict(operands)
            if "target" in fields:
                fields["target"] = self._resolve(fields["target"])
            if "switch_cases" in fields:
                cases = tuple(
                    sorted(
                        (key, self._resolve(dest))
                        for key, dest in fields.pop("switch_cases").items()
                    )
                )
                default = self._resolve(fields.pop("switch_default"))
                fields["switch"] = SwitchTable(cases=cases, default=default)
            code.append(Instruction(op=op, bci=bci, **fields))
        handlers = [
            ExceptionHandler(
                self._resolve(start), self._resolve(end), self._resolve(target)
            )
            for start, end, target in self._handlers
        ]
        max_locals = self._max_locals
        if max_locals is None:
            max_locals = self._max_local_seen
        if max_locals < self._max_local_seen:
            raise AssemblyError(
                "max_locals=%d but local %d used"
                % (max_locals, self._max_local_seen - 1)
            )
        method = JMethod(
            class_name=self._class_name,
            name=self._name,
            arg_count=self._arg_count,
            returns_value=self._returns_value,
            max_locals=max_locals,
            code=code,
            handlers=handlers,
            is_static=self._is_static,
        )
        if not code:
            raise AssemblyError("empty method %s" % method.qualified_name)
        return method


def assemble_counting_loop(
    class_name: str, name: str, iterations: int, body_ops: int = 2
) -> JMethod:
    """Convenience: a loop running *iterations* times with a small body.

    Used widely in tests; returns the loop counter's final value.
    """
    if iterations < 0:
        raise ProgramError("iterations must be >= 0")
    asm = MethodAssembler(class_name, name, arg_count=0, returns_value=True)
    asm.const(0).store(0)
    asm.label("head")
    asm.load(0).const(iterations).if_icmpge("done")
    for _ in range(body_ops):
        asm.nop()
    asm.iinc(0, 1).goto("head")
    asm.label("done")
    asm.load(0).ireturn()
    return asm.build()
