"""Structural bytecode verifier.

Checks the properties the rest of the system relies on:

* every branch/switch/handler target is a valid bci;
* no instruction falls off the end of the method;
* local-variable indices are within ``max_locals``;
* the operand stack has a single consistent depth at every bci (computed
  by a worklist dataflow over the CFG successors), never underflows, and
  is exactly the returned-value depth at returns;
* exception handlers are entered with depth 1 (the thrown object).

The verifier is deliberately *structural* (no type inference): that is all
the decoding/reconstruction layers need, and it keeps generated workloads
honest without re-implementing the full JVM verifier.
"""

from __future__ import annotations

from typing import Dict, List

from .model import JMethod, JProgram
from .opcodes import Kind, Op, info


class VerificationError(Exception):
    """Raised when a method fails verification."""


def _stack_effect(method: JMethod, bci: int):
    """(pops, pushes) for the instruction at *bci*."""
    inst = method.code[bci]
    op_info = info(inst.op)
    if inst.kind is Kind.CALL:
        ref = inst.methodref
        return ref.arg_count, (1 if ref.returns_value else 0)
    return op_info.pops, op_info.pushes


def verify_method(method: JMethod) -> None:
    """Verify one method; raises :class:`VerificationError` on failure."""
    code = method.code
    if not code:
        raise VerificationError("%s: empty code" % method.qualified_name)
    length = len(code)

    def fail(bci, message):
        raise VerificationError(
            "%s @%d (%s): %s" % (method.qualified_name, bci, code[bci], message)
        )

    # -- structural checks ---------------------------------------------------
    for position, inst in enumerate(code):
        if inst.bci != position:
            raise VerificationError(
                "%s: instruction at position %d has bci %d"
                % (method.qualified_name, position, inst.bci)
            )
        for target in inst.successors_within(length):
            if not 0 <= target < length:
                fail(inst.bci, "branch target %d out of range" % target)
        if inst.kind not in (Kind.RETURN, Kind.THROW, Kind.GOTO, Kind.SWITCH):
            if inst.bci + 1 >= length and inst.kind is not Kind.COND:
                fail(inst.bci, "falls off the end of the method")
        if inst.kind is Kind.COND and inst.bci + 1 >= length:
            fail(inst.bci, "conditional fall-through off the end")
        if inst.index is not None and inst.index >= method.max_locals:
            fail(inst.bci, "local %d >= max_locals %d" % (inst.index, method.max_locals))
        if inst.op in (Op.ILOAD_0, Op.ISTORE_0, Op.ALOAD_0, Op.ASTORE_0):
            if method.max_locals < 1:
                fail(inst.bci, "local 0 >= max_locals 0")
    for handler in method.handlers:
        if not (0 <= handler.start < handler.end <= length):
            raise VerificationError(
                "%s: bad handler range [%d, %d)"
                % (method.qualified_name, handler.start, handler.end)
            )
        if not 0 <= handler.handler < length:
            raise VerificationError(
                "%s: handler target %d out of range"
                % (method.qualified_name, handler.handler)
            )

    # -- stack-depth dataflow -------------------------------------------------
    depth_at: Dict[int, int] = {0: 0}
    work: List[int] = [0]
    # Handler entries are reachable with depth 1 from any covered bci; seed
    # them eagerly so unreachable-looking handlers are still checked.
    for handler in method.handlers:
        if handler.handler not in depth_at:
            depth_at[handler.handler] = 1
            work.append(handler.handler)
    while work:
        bci = work.pop()
        depth = depth_at[bci]
        inst = code[bci]
        pops, pushes = _stack_effect(method, bci)
        if depth < pops:
            fail(bci, "stack underflow (depth %d, pops %d)" % (depth, pops))
        depth_out = depth - pops + pushes
        if inst.kind is Kind.RETURN:
            wants = 1 if inst.op in (Op.IRETURN, Op.ARETURN) else 0
            if depth < wants:
                fail(bci, "return with empty stack")
            continue
        if inst.kind is Kind.THROW:
            continue
        for target in inst.successors_within(length):
            seen = depth_at.get(target)
            if seen is None:
                depth_at[target] = depth_out
                work.append(target)
            elif seen != depth_out:
                fail(
                    bci,
                    "inconsistent stack depth at %d: %d vs %d"
                    % (target, seen, depth_out),
                )


def verify_program(program: JProgram) -> None:
    """Verify every method and the entry point of *program*.

    Also checks that every call site's symbolic reference resolves and that
    the callee's signature matches the reference.
    """
    program.entry_method()  # raises if missing
    for method in program.methods():
        verify_method(method)
        for inst in method.code:
            if inst.kind is Kind.CALL:
                callee = program.method(
                    inst.methodref.class_name, inst.methodref.method_name
                )
                if callee.arg_count != inst.methodref.arg_count:
                    raise VerificationError(
                        "%s @%d: call %s expects %d args, callee takes %d"
                        % (
                            method.qualified_name,
                            inst.bci,
                            inst.methodref,
                            inst.methodref.arg_count,
                            callee.arg_count,
                        )
                    )
                if callee.returns_value != inst.methodref.returns_value:
                    raise VerificationError(
                        "%s @%d: call %s return-kind mismatch"
                        % (method.qualified_name, inst.bci, inst.methodref)
                    )
