"""Textual disassembly of bytecode methods and JIT-compiled code.

Produces the kinds of listings the paper's figures show: Figure 2(b)'s
bytecode listing, Figure 2(c)'s template metadata table, and Figure 3(a)/
(b)'s compiled code with its debug info.  Used by examples, debugging
sessions, and golden tests.
"""

from __future__ import annotations

from typing import List, Optional

from .jit import NativeCode
from .model import JMethod, JProgram
from .templates import TemplateTable


def disassemble_method(method: JMethod) -> str:
    """Figure 2(b)-style listing of one method."""
    lines = [
        "%s(args=%d, locals=%d)%s:"
        % (
            method.qualified_name,
            method.arg_count,
            method.max_locals,
            "" if method.is_static else " [instance]",
        )
    ]
    for inst in method.code:
        lines.append("  %4d: %s" % (inst.bci, inst))
    for handler in method.handlers:
        lines.append(
            "  catch [%d, %d) -> %d" % (handler.start, handler.end, handler.handler)
        )
    return "\n".join(lines)


def disassemble_program(program: JProgram) -> str:
    """Every method of a program, deterministically ordered."""
    return "\n\n".join(disassemble_method(method) for method in program.methods())


def template_metadata_listing(
    table: TemplateTable, mnemonics: Optional[List[str]] = None
) -> str:
    """Figure 2(c)-style template address-range table."""
    metadata = table.metadata()
    names = mnemonics if mnemonics is not None else sorted(metadata)
    lines = []
    for name in names:
        ranges = metadata[name]
        rendered = ", ".join("[0x%x, 0x%x)" % (start, end) for start, end in ranges)
        lines.append("%-16s %s" % (name, rendered))
    return "\n".join(lines)


def disassemble_native(code: NativeCode, with_debug: bool = True) -> str:
    """Figure 3(a)/(b)-style listing of compiled code.

    With ``with_debug``, each instruction carrying a debug record shows
    its bytecode location (inline frames rendered as a chain).
    """
    lines = ["%s:" % code]
    for mi in code.instructions:
        annotation = ""
        if with_debug:
            frames = code.debug.get(mi.address)
            if frames is not None:
                annotation = "   ; " + " > ".join(
                    "%s@%d" % (qname, bci) for qname, bci in frames
                )
        lines.append("  %s%s" % (mi, annotation))
    return "\n".join(lines)


def debug_info_listing(code: NativeCode) -> str:
    """Figure 3(b): pc -> method@bci records (inline frames included)."""
    lines = []
    for address in sorted(code.debug):
        frames = code.debug[address]
        rendered = " > ".join("%s@%d" % (qname, bci) for qname, bci in frames)
        lines.append("pc=0x%x  %s" % (address, rendered))
    return "\n".join(lines)
