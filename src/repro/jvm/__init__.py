"""Simulated JVM substrate: bytecode ISA, CFG/ICFG, interpreter, JIT, runtime."""

from .assembler import AssemblyError, MethodAssembler
from .cfg import CFG, BasicBlock, Edge, EdgeKind
from .icfg import ICFG, IEdgeKind
from .instructions import FieldRef, Instruction, MethodRef, SwitchTable
from .interpreter import Frame, JArray, JObject, Outcome, OutcomeKind, Statics, step
from .jit import CodeCache, JITCompiler, JITPolicy, NativeCode
from .machine import AddressSpace, DEFAULT_ADDRESS_SPACE, MIKind, MachineInstruction
from .model import ExceptionHandler, JClass, JMethod, JProgram, ProgramError
from .opcodes import Kind, Op, OpInfo, info, tier
from .runtime import (
    ExecutionBudgetExceeded,
    JVMRuntime,
    RunResult,
    RuntimeConfig,
    run_program,
)
from .templates import TemplateTable
from .verifier import VerificationError, verify_method, verify_program

__all__ = [
    "AssemblyError",
    "MethodAssembler",
    "CFG",
    "BasicBlock",
    "Edge",
    "EdgeKind",
    "ICFG",
    "IEdgeKind",
    "FieldRef",
    "Instruction",
    "MethodRef",
    "SwitchTable",
    "Frame",
    "JArray",
    "JObject",
    "Outcome",
    "OutcomeKind",
    "Statics",
    "step",
    "CodeCache",
    "JITCompiler",
    "JITPolicy",
    "NativeCode",
    "AddressSpace",
    "DEFAULT_ADDRESS_SPACE",
    "MIKind",
    "MachineInstruction",
    "ExceptionHandler",
    "JClass",
    "JMethod",
    "JProgram",
    "ProgramError",
    "Kind",
    "Op",
    "OpInfo",
    "info",
    "tier",
    "ExecutionBudgetExceeded",
    "JVMRuntime",
    "RunResult",
    "RuntimeConfig",
    "run_program",
    "TemplateTable",
    "VerificationError",
    "verify_method",
    "verify_program",
]
