"""Interprocedural control-flow graph at instruction granularity.

Nodes are ``(method_qualified_name, bci)`` pairs; edges are the
"potential-next-instruction-to-execute" relation of the paper's
Definition 4.1, i.e. the relation over *dynamically observed* instruction
sequences:

* a call site's successors are the entry instructions of every statically
  possible callee (virtual dispatch over-approximated by subtype
  overrides);
* a return instruction's successors are the *return sites* (call bci + 1)
  of every call site that may invoke the returning method;
* ``athrow`` flows to the innermost covering handler in its own method or,
  when uncovered, unwinds to handlers covering any reachable call site in
  (transitive) callers;
* everything else follows the intra-method successor relation.

Call sites may be marked *opaque* (``opaque_call_sites``) to model dynamic
features such as reflection whose targets a static builder cannot see --
the situation the paper's Section 4 "Discussions" handles by searching all
potential callback methods.  Opaque sites get no callee edges here; the
reconstruction layer supplies the callback-search fallback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .model import JMethod, JProgram
from .opcodes import Kind, Op

Node = Tuple[str, int]


class IEdgeKind(enum.Enum):
    """Classification of ICFG edges."""

    INTRA = "intra"  # straight-line / branch / jump / switch
    CALL = "call"  # call site -> callee entry
    RETURN = "return"  # return instruction -> return site
    THROW = "throw"  # athrow -> handler entry (possibly in a caller)


@dataclass(frozen=True)
class IEdge:
    """One ICFG edge with a stable identity.

    ``edge_id`` is assigned in construction order, which is deterministic
    for a given program (methods and instructions are visited in a fixed
    order), so the id is a stable handle across consumers: the NFA keeps
    it alongside each transition, the observability classifier keys its
    per-edge verdicts by it, and reports can reference an edge without
    re-deriving ``(src, dst, kind)`` triples ad hoc.
    """

    edge_id: int
    src: Node
    dst: Node
    kind: IEdgeKind

    def __str__(self):
        return "#%d %s:%d -%s-> %s:%d" % (
            self.edge_id,
            self.src[0],
            self.src[1],
            self.kind.value,
            self.dst[0],
            self.dst[1],
        )


class ICFG:
    """Instruction-granularity interprocedural CFG of a whole program."""

    def __init__(
        self,
        program: JProgram,
        opaque_call_sites: Iterable[Node] = (),
    ):
        self.program = program
        self.opaque_call_sites: FrozenSet[Node] = frozenset(opaque_call_sites)
        self._methods: Dict[str, JMethod] = {
            method.qualified_name: method for method in program.methods()
        }
        self._successors: Dict[Node, List[Tuple[Node, IEdgeKind]]] = {}
        self._predecessors: Dict[Node, List[Tuple[Node, IEdgeKind]]] = {}
        self._callers: Dict[str, List[Node]] = {}  # callee qname -> call-site nodes
        # Stable edge records (ids in construction order); _successors /
        # _predecessors above are the tuple views kept for cheap iteration.
        self._edges: List[IEdge] = []
        self._out: Dict[Node, List[IEdge]] = {}
        self._in: Dict[Node, List[IEdge]] = {}
        self._build()

    # --------------------------------------------------------------- building
    def _build(self) -> None:
        # Pass 1: intra-method edges and the caller map.
        for qname, method in self._methods.items():
            for inst in method.code:
                node = (qname, inst.bci)
                self._successors.setdefault(node, [])
                if inst.kind is Kind.CALL:
                    if node not in self.opaque_call_sites:
                        for callee in self.program.possible_targets(
                            inst.methodref, virtual=inst.op is Op.INVOKEVIRTUAL
                        ):
                            self._callers.setdefault(callee.qualified_name, []).append(
                                node
                            )
                    continue
                if inst.kind is Kind.THROW:
                    continue  # handled in pass 2
                for target in inst.successors_within(len(method.code)):
                    self._add_edge(node, (qname, target), IEdgeKind.INTRA)

        # Pass 2: interprocedural edges.
        for qname, method in self._methods.items():
            for inst in method.code:
                node = (qname, inst.bci)
                if inst.kind is Kind.CALL and node not in self.opaque_call_sites:
                    for callee in self.program.possible_targets(
                        inst.methodref, virtual=inst.op is Op.INVOKEVIRTUAL
                    ):
                        self._add_edge(
                            node, (callee.qualified_name, 0), IEdgeKind.CALL
                        )
                elif inst.kind is Kind.RETURN:
                    for call_node in self._callers.get(qname, ()):
                        call_method = self._methods[call_node[0]]
                        return_site = call_node[1] + 1
                        if return_site < len(call_method.code):
                            self._add_edge(
                                node, (call_node[0], return_site), IEdgeKind.RETURN
                            )
                elif inst.kind is Kind.THROW:
                    for handler_node in self._throw_targets(method, inst.bci):
                        self._add_edge(node, handler_node, IEdgeKind.THROW)

    def _add_edge(self, src: Node, dst: Node, kind: IEdgeKind) -> None:
        entry = (dst, kind)
        successors = self._successors.setdefault(src, [])
        if entry not in successors:
            successors.append(entry)
            self._predecessors.setdefault(dst, []).append((src, kind))
            edge = IEdge(edge_id=len(self._edges), src=src, dst=dst, kind=kind)
            self._edges.append(edge)
            self._out.setdefault(src, []).append(edge)
            self._in.setdefault(dst, []).append(edge)

    def _throw_targets(
        self, method: JMethod, bci: int, _visiting: Optional[Set[str]] = None
    ) -> List[Node]:
        """Handler entries a throw at ``method@bci`` may reach.

        The innermost covering handler in the same method wins; otherwise
        the exception unwinds to every (transitive) caller whose call site
        is covered.  Context-insensitive, like the rest of the ICFG.
        """
        handler = method.handler_for(bci)
        if handler is not None:
            return [(method.qualified_name, handler.handler)]
        if _visiting is None:
            _visiting = set()
        if method.qualified_name in _visiting:
            return []
        _visiting.add(method.qualified_name)
        targets: List[Node] = []
        for call_node in self._callers.get(method.qualified_name, ()):
            caller = self._methods[call_node[0]]
            for node in self._throw_targets(caller, call_node[1], _visiting):
                if node not in targets:
                    targets.append(node)
        return targets

    # ---------------------------------------------------------------- queries
    def methods(self) -> Dict[str, JMethod]:
        return self._methods

    def method(self, qname: str) -> JMethod:
        return self._methods[qname]

    def nodes(self) -> Iterable[Node]:
        for qname in sorted(self._methods):
            method = self._methods[qname]
            for inst in method.code:
                yield (qname, inst.bci)

    def instruction(self, node: Node):
        return self._methods[node[0]].code[node[1]]

    def successors(self, node: Node) -> List[Tuple[Node, IEdgeKind]]:
        return self._successors.get(node, [])

    def predecessors(self, node: Node) -> List[Tuple[Node, IEdgeKind]]:
        return self._predecessors.get(node, [])

    def out_edges(self, node: Node) -> List[IEdge]:
        """Outgoing :class:`IEdge` records of *node* (stable edge ids)."""
        return self._out.get(node, [])

    def in_edges(self, node: Node) -> List[IEdge]:
        """Incoming :class:`IEdge` records of *node*."""
        return self._in.get(node, [])

    def edges(self) -> List[IEdge]:
        """All edges in edge-id order."""
        return self._edges

    def edge(self, edge_id: int) -> IEdge:
        """The edge with the given stable id."""
        return self._edges[edge_id]

    def entry_node(self, method: JMethod) -> Node:
        return (method.qualified_name, 0)

    def callers_of(self, qname: str) -> List[Node]:
        return list(self._callers.get(qname, ()))

    def node_count(self) -> int:
        return sum(len(method.code) for method in self._methods.values())

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._successors.values())

    def __str__(self):
        return "ICFG(%s: %d nodes, %d edges)" % (
            self.program.name,
            self.node_count(),
            self.edge_count(),
        )
