"""The JIT compiler: bytecode -> synthetic machine code + debug info.

Hot methods are compiled to :class:`~repro.jvm.machine.MachineInstruction`
sequences laid out in reverse postorder, with small monomorphic callees
inlined.  Two artefacts come out of compilation:

* the **machine code itself** (instruction kinds, sizes, direct targets) --
  this is what the PT decoder walks, exactly as libipt walks real code;
* the **debug info** mapping every machine PC to a stack of
  ``(method, bci)`` frames (innermost last) -- the metadata HotSpot
  maintains for deoptimisation/exceptions and that JPortal repurposes for
  bytecode-level reconstruction (paper Section 3.2 and Figure 3(b));
  inlined code is represented by multi-entry frame stacks (Section 6,
  "Dealing with Inlined Code").

A third, **runtime-private** artefact is the semantic map (machine PC ->
which bytecode's data effect to apply) used by the execution engine in
:mod:`repro.jvm.runtime`.  It is never handed to the decoding side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .cfg import CFG
from .machine import DEFAULT_ADDRESS_SPACE, AddressSpace, MachineInstruction, MIKind
from .model import JMethod, JProgram
from .opcodes import Kind, Op

# Inline context: the chain of call sites through which a method body was
# inlined, outermost first.  () is the root method's own context.
Ctx = Tuple[Tuple[str, int], ...]
# Label key: a machine location addressable by (context, method, bci), plus
# synthetic continuation labels for inline call sites.
LabelKey = Tuple


@dataclass(frozen=True)
class SemBytecode:
    """Machine instruction implements the bytecode at ``qname@bci``."""

    qname: str
    bci: int
    ctx: Ctx = ()


@dataclass(frozen=True)
class SemInlineEnter:
    """An inlined call site: bind arguments into a new inline frame."""

    qname: str
    bci: int
    ctx: Ctx
    callee_qname: str


@dataclass(frozen=True)
class SemInlineReturn:
    """A return inside an inlined body: pop the inline frame."""

    qname: str
    bci: int
    ctx: Ctx


@dataclass(frozen=True)
class SemGuard:
    """A speculative-inlining guard at a polymorphic call site.

    Compiled as a real conditional branch: not-taken falls into the
    inlined body of the *expected* callee; taken jumps to the method's
    deoptimisation stub (an uncommon trap), transferring the activation
    back to the interpreter.  Like HotSpot's class-check guards, the
    branch is PT-visible as one TNT bit, which is what keeps decoding
    exact across deoptimisation.
    """

    qname: str
    bci: int
    ctx: Ctx
    expected_qname: str


class JITError(Exception):
    """Raised on compilation failures (code cache exhaustion etc.)."""


@dataclass
class JITPolicy:
    """Tuning knobs of the compiler.

    Attributes:
        hot_threshold: Invocation count after which a method is compiled.
        inline_max_size: Max callee instruction count eligible for inlining.
        inline_max_depth: Max nesting of inlined bodies.
        enable_inlining: Master switch (ablation knob).
        max_compile_size: Methods longer than this stay interpreted.
        osr_threshold: Back-edge count after which a *running* interpreted
            activation is switched onto compiled code at the loop header
            (HotSpot's on-stack replacement).  0 disables OSR.
        speculative_inlining: Inline the statically resolved target even
            at polymorphic virtual sites, behind a class-check guard whose
            failure deoptimises back to the interpreter.
    """

    hot_threshold: int = 10
    inline_max_size: int = 14
    inline_max_depth: int = 2
    enable_inlining: bool = True
    max_compile_size: int = 2000
    osr_threshold: int = 0
    speculative_inlining: bool = False


# Deterministic machine-instruction sizes per kind (bytes); loosely x86-ish.
_SIZES = {
    MIKind.OTHER: 3,
    MIKind.COND_BRANCH: 6,
    MIKind.JMP_DIRECT: 5,
    MIKind.JMP_INDIRECT: 6,
    MIKind.CALL_DIRECT: 5,
    MIKind.CALL_INDIRECT: 6,
    MIKind.RET: 1,
}
_PROLOGUE_SIZE = 12


@dataclass
class _Pending:
    kind: MIKind
    size: int
    semantic: object = None
    target_key: Optional[LabelKey] = None
    direct_target: Optional[int] = None
    text: str = ""


class NativeCode:
    """One compiled method: code, debug info, and runtime-private maps."""

    def __init__(
        self,
        method: JMethod,
        entry: int,
        instructions: List[MachineInstruction],
        semantic: Dict[int, object],
        debug: Dict[int, Tuple[Tuple[str, int], ...]],
        entry_points: Dict[LabelKey, int],
        load_tsc: int,
    ):
        self.method = method
        self.entry = entry
        self.instructions = instructions
        self.semantic = semantic
        self.debug = debug
        self.entry_points = entry_points
        self.load_tsc = load_tsc
        self.unload_tsc: Optional[int] = None
        self._by_address = {mi.address: i for i, mi in enumerate(instructions)}

    @property
    def limit(self) -> int:
        last = self.instructions[-1]
        return last.address + last.size

    def contains(self, address: int) -> bool:
        return self.entry <= address < self.limit

    def at(self, address: int) -> MachineInstruction:
        return self.instructions[self._by_address[address]]

    def after(self, mi: MachineInstruction) -> Optional[MachineInstruction]:
        """The fallthrough successor of *mi*, or None at the end."""
        index = self._by_address[mi.address] + 1
        if index < len(self.instructions):
            return self.instructions[index]
        return None

    def address_of(self, ctx: Ctx, qname: str, bci: int) -> int:
        """Machine address where ``qname@bci`` (under *ctx*) begins."""
        return self.entry_points[(ctx, qname, bci)]

    def size(self) -> int:
        return self.limit - self.entry

    def __str__(self):
        return "NativeCode(%s @0x%x, %d insts)" % (
            self.method.qualified_name,
            self.entry,
            len(self.instructions),
        )


class CodeCache:
    """The JIT code cache: a bump allocator over the code-cache range.

    Tracks live and reclaimed code with load/unload timestamps so that the
    decoding side can resolve an IP observed at time *t* to the code that
    occupied it then (the paper exports code before GC reclaims it).
    """

    def __init__(self, address_space: AddressSpace = DEFAULT_ADDRESS_SPACE):
        self.address_space = address_space
        self._cursor = address_space.code_cache_base
        self._live: Dict[str, NativeCode] = {}
        self._all: List[NativeCode] = []
        # Reclaimed regions available for reuse: (base, size).  Address
        # reuse is what makes export-before-GC matter: the decoder must
        # resolve an IP to the code that occupied it *at trace time*.
        self._free: List[Tuple[int, int]] = []

    def allocate(self, size: int) -> int:
        for index, (base, free_size) in enumerate(self._free):
            if free_size >= size:
                remaining = free_size - size - 0x10
                if remaining > 0x20:
                    self._free[index] = (base + size + 0x10, remaining)
                else:
                    del self._free[index]
                return base
        base = self._cursor
        if base + size > self.address_space.code_cache_limit:
            raise JITError("code cache exhausted")
        self._cursor = base + size + 0x10  # alignment gap
        return base

    def install(self, code: NativeCode) -> None:
        self._live[code.method.qualified_name] = code
        self._all.append(code)

    def evict(self, qname: str, tsc: int) -> None:
        """Reclaim a method's code (simulated GC of the code cache).

        The region becomes reusable by later compilations; the unload
        timestamp is what lets the offline side pick the right epoch.
        """
        code = self._live.pop(qname, None)
        if code is not None:
            code.unload_tsc = tsc
            self._free.append((code.entry, code.limit - code.entry))

    def lookup(self, qname: str) -> Optional[NativeCode]:
        return self._live.get(qname)

    def code_at(self, address: int) -> Optional[NativeCode]:
        for code in self._live.values():
            if code.contains(address):
                return code
        return None

    def all_code(self) -> List[NativeCode]:
        """Every compiled blob ever installed (including reclaimed)."""
        return list(self._all)

    def compiled_methods(self) -> List[str]:
        return sorted(self._live)


class JITCompiler:
    """Compiles methods against a program, a policy, and a code cache."""

    def __init__(
        self,
        program: JProgram,
        code_cache: CodeCache,
        policy: Optional[JITPolicy] = None,
    ):
        self.program = program
        self.code_cache = code_cache
        self.policy = policy or JITPolicy()

    # ------------------------------------------------------------------ API
    def should_compile(self, method: JMethod, invocation_count: int) -> bool:
        if len(method.code) > self.policy.max_compile_size:
            return False
        return invocation_count >= self.policy.hot_threshold

    def compile(
        self, method: JMethod, tsc: int = 0, allow_speculation: bool = True
    ) -> NativeCode:
        """Compile *method*, install it in the code cache, and return it.

        ``allow_speculation=False`` disables speculative inlining for this
        one compilation -- how a method is recompiled after its guards
        have trapped too often.
        """
        self._allow_speculation = allow_speculation
        pending: List[_Pending] = []
        labels: Dict[LabelKey, int] = {}
        pending.append(
            _Pending(MIKind.OTHER, _PROLOGUE_SIZE, text="prologue")
        )
        self._emit_method(method, ctx=(), depth=0, pending=pending, labels=labels)
        if any(isinstance(item.semantic, SemGuard) for item in pending):
            # One uncommon-trap stub per nmethod: every guard's taken arm
            # lands here; the transition back to the interpreter is an
            # indirect jump whose target the next TIP reveals.
            labels[("deopt_stub",)] = len(pending)
            pending.append(
                _Pending(
                    MIKind.JMP_INDIRECT,
                    _SIZES[MIKind.JMP_INDIRECT],
                    text="deopt-stub",
                )
            )

        total = sum(item.size for item in pending)
        base = self.code_cache.allocate(total)
        addresses: List[int] = []
        cursor = base
        for item in pending:
            addresses.append(cursor)
            cursor += item.size

        entry_points = {key: addresses[index] for key, index in labels.items()}
        instructions: List[MachineInstruction] = []
        semantic: Dict[int, object] = {}
        debug: Dict[int, Tuple[Tuple[str, int], ...]] = {}
        for item, address in zip(pending, addresses):
            target = item.direct_target
            if item.target_key is not None:
                target = entry_points[item.target_key]
            instructions.append(
                MachineInstruction(
                    address=address,
                    size=item.size,
                    kind=item.kind,
                    target=target,
                    text=item.text,
                )
            )
            if item.semantic is not None:
                semantic[address] = item.semantic
                # Debug records exist only where the compiler planted them
                # (bytecode-implementing instructions); synthetic layout
                # jumps, guards, and the prologue have none, like real
                # nmethods.  (A guard must not produce an observed step:
                # the inline-enter right after it carries the call site.)
                if not isinstance(item.semantic, SemGuard):
                    debug[address] = self._frames_of(item.semantic)

        code = NativeCode(
            method=method,
            entry=base,
            instructions=instructions,
            semantic=semantic,
            debug=debug,
            entry_points=entry_points,
            load_tsc=tsc,
        )
        self.code_cache.install(code)
        return code

    # ------------------------------------------------------------- internals
    @staticmethod
    def _frames_of(semantic) -> Tuple[Tuple[str, int], ...]:
        """Debug frame stack for a semantic record: inline sites, then the
        executing location (innermost last)."""
        return semantic.ctx + ((semantic.qname, semantic.bci),)

    def _inline_target(self, method: JMethod, inst, depth: int):
        """``(callee, needs_guard)`` for the callee to inline here, if any.

        A unique static target inlines unguarded; with speculative
        inlining enabled, a polymorphic virtual site inlines the resolved
        base target behind a deopt guard.
        """
        if not self.policy.enable_inlining:
            return None, False
        if depth >= self.policy.inline_max_depth:
            return None, False
        targets = self.program.possible_targets(
            inst.methodref, virtual=inst.op is Op.INVOKEVIRTUAL
        )
        needs_guard = False
        if len(targets) == 1:
            callee = targets[0]
        elif self.policy.speculative_inlining and getattr(
            self, "_allow_speculation", True
        ):
            callee = targets[0]  # the statically resolved method
            needs_guard = True
        else:
            return None, False
        if callee.qualified_name == method.qualified_name:
            return None, False  # no self-inlining
        if len(callee.code) > self.policy.inline_max_size:
            return None, False
        if callee.handlers:
            return None, False  # keep inlined bodies handler-free
        return callee, needs_guard

    def _emit_method(
        self,
        method: JMethod,
        ctx: Ctx,
        depth: int,
        pending: List[_Pending],
        labels: Dict[LabelKey, int],
    ) -> None:
        qname = method.qualified_name
        cfg = CFG(method)
        order = cfg.reverse_postorder()
        position_in_layout = {block_id: i for i, block_id in enumerate(order)}
        code = method.code

        for layout_index, block_id in enumerate(order):
            block = cfg.blocks[block_id]
            next_block = order[layout_index + 1] if layout_index + 1 < len(order) else None
            for bci in block.bcis():
                inst = code[bci]
                labels[(ctx, qname, bci)] = len(pending)
                kind = inst.kind
                if kind is Kind.COND:
                    pending.append(
                        _Pending(
                            MIKind.COND_BRANCH,
                            _SIZES[MIKind.COND_BRANCH],
                            semantic=SemBytecode(qname, bci, ctx),
                            target_key=(ctx, qname, inst.target),
                            text="jcc<%s@%d>" % (qname, bci),
                        )
                    )
                elif kind is Kind.GOTO:
                    pending.append(
                        _Pending(
                            MIKind.JMP_DIRECT,
                            _SIZES[MIKind.JMP_DIRECT],
                            semantic=SemBytecode(qname, bci, ctx),
                            target_key=(ctx, qname, inst.target),
                            text="jmp<%s@%d>" % (qname, bci),
                        )
                    )
                elif kind is Kind.SWITCH:
                    pending.append(
                        _Pending(
                            MIKind.JMP_INDIRECT,
                            _SIZES[MIKind.JMP_INDIRECT],
                            semantic=SemBytecode(qname, bci, ctx),
                            text="jmp*<%s@%d>" % (qname, bci),
                        )
                    )
                elif kind is Kind.THROW:
                    pending.append(
                        _Pending(
                            MIKind.JMP_INDIRECT,
                            _SIZES[MIKind.JMP_INDIRECT],
                            semantic=SemBytecode(qname, bci, ctx),
                            text="throw<%s@%d>" % (qname, bci),
                        )
                    )
                elif kind is Kind.CALL:
                    inline_callee, needs_guard = self._inline_target(
                        method, inst, depth
                    )
                    if inline_callee is not None:
                        if needs_guard:
                            pending.append(
                                _Pending(
                                    MIKind.COND_BRANCH,
                                    _SIZES[MIKind.COND_BRANCH],
                                    semantic=SemGuard(
                                        qname, bci, ctx, inline_callee.qualified_name
                                    ),
                                    target_key=("deopt_stub",),
                                    text="guard<%s>" % inline_callee.qualified_name,
                                )
                            )
                        pending.append(
                            _Pending(
                                MIKind.OTHER,
                                _SIZES[MIKind.OTHER],
                                semantic=SemInlineEnter(
                                    qname, bci, ctx, inline_callee.qualified_name
                                ),
                                text="inline-enter<%s>" % inline_callee.qualified_name,
                            )
                        )
                        inner_ctx = ctx + ((qname, bci),)
                        self._emit_method(
                            inline_callee, inner_ctx, depth + 1, pending, labels
                        )
                        labels[(ctx, qname, bci, "cont")] = len(pending)
                    else:
                        direct = inst.op in (Op.INVOKESTATIC, Op.INVOKESPECIAL)
                        callee_code = None
                        if direct:
                            callee_code = self.code_cache.lookup(
                                "%s.%s"
                                % (
                                    inst.methodref.class_name,
                                    inst.methodref.method_name,
                                )
                            )
                        if direct and callee_code is not None:
                            # The callee's entry is already known: emit a
                            # direct call (no TIP packet at runtime).
                            pending.append(
                                _Pending(
                                    MIKind.CALL_DIRECT,
                                    _SIZES[MIKind.CALL_DIRECT],
                                    semantic=SemBytecode(qname, bci, ctx),
                                    direct_target=callee_code.entry,
                                    text="call<%s@%d> 0x%x"
                                    % (qname, bci, callee_code.entry),
                                )
                            )
                        else:
                            pending.append(
                                _Pending(
                                    MIKind.CALL_INDIRECT,
                                    _SIZES[MIKind.CALL_INDIRECT],
                                    semantic=SemBytecode(qname, bci, ctx),
                                    text="call*<%s@%d>" % (qname, bci),
                                )
                            )
                elif kind is Kind.RETURN:
                    if ctx:
                        site_ctx, (site_qname, site_bci) = ctx[:-1], ctx[-1]
                        pending.append(
                            _Pending(
                                MIKind.JMP_DIRECT,
                                _SIZES[MIKind.JMP_DIRECT],
                                semantic=SemInlineReturn(qname, bci, ctx),
                                target_key=(site_ctx, site_qname, site_bci, "cont"),
                                text="inline-ret<%s@%d>" % (qname, bci),
                            )
                        )
                    else:
                        pending.append(
                            _Pending(
                                MIKind.RET,
                                _SIZES[MIKind.RET],
                                semantic=SemBytecode(qname, bci, ctx),
                                text="ret<%s@%d>" % (qname, bci),
                            )
                        )
                else:
                    pending.append(
                        _Pending(
                            MIKind.OTHER,
                            _SIZES[MIKind.OTHER],
                            semantic=SemBytecode(qname, bci, ctx),
                            text="<%s@%d>" % (qname, bci),
                        )
                    )
            # Fallthrough adjustment: if the block can fall through but the
            # next block in layout is not the fallthrough target, bridge
            # with a synthetic jump (no semantics, decoder-transparent).
            last = code[block.last_bci]
            fall_bci = None
            if last.kind is Kind.COND:
                fall_bci = block.last_bci + 1
            elif last.kind in (Kind.NORMAL, Kind.CALL) and block.end < len(code):
                fall_bci = block.end
            if fall_bci is not None:
                fall_block = cfg.block_of(fall_bci).block_id
                if next_block != fall_block:
                    pending.append(
                        _Pending(
                            MIKind.JMP_DIRECT,
                            _SIZES[MIKind.JMP_DIRECT],
                            target_key=(ctx, qname, fall_bci),
                            text="jmp-layout",
                        )
                    )
