"""Tiered JVM runtime: interpretation, JIT execution, threads, and tracing.

The runtime executes a :class:`~repro.jvm.model.JProgram` the way HotSpot
does at the granularity this reproduction needs:

* every method starts **interpreted**; executing a bytecode is an indirect
  jump to its template (one ``TIP`` event per bytecode, plus a ``TNT`` bit
  per conditional) -- Figure 2(d) of the paper;
* a method crossing the invocation threshold is **JIT-compiled**; its
  execution then walks the compiled machine code, emitting only the events
  real PT would see (TNT bits for jcc, TIP for indirect calls / returns /
  switches, nothing for direct jumps) -- Figure 3(c);
* mixed-mode transitions emit the bridging TIPs (interpreter -> compiled
  entry; compiled ``ret`` -> the interpreter return stub);
* threads are scheduled round-robin in quanta over ``cores`` simulated
  cores; each quantum appends a sideband :class:`ThreadSwitchRecord`
  (with optional timestamp jitter -- the inconsistency the paper names as
  an accuracy-loss source for multi-threaded programs);
* implicit traps and explicit ``athrow`` dispatch exceptions across frames
  and modes, emitting ``FUP``/``TIP`` like hardware would;
* simulated GC pauses toggle tracing (``PGD``/``PGE``).

Alongside the hardware-event streams the runtime records the **ground
truth**: the exact (method, bci) sequence each thread executed, and
per-method self-cost for hot-method experiments.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .interpreter import Frame, Outcome, OutcomeKind, Statics, step
from .jit import (
    CodeCache,
    JITCompiler,
    JITPolicy,
    NativeCode,
    SemBytecode,
    SemGuard,
    SemInlineEnter,
    SemInlineReturn,
)
from .machine import (
    DEFAULT_ADDRESS_SPACE,
    AddressSpace,
    DisableEvent,
    EnableEvent,
    FupEvent,
    HardwareEvent,
    MIKind,
    ThreadSwitchRecord,
    TipEvent,
    TntEvent,
)
from .model import JMethod, JProgram
from .opcodes import Op
from .templates import TemplateTable


class ExecutionBudgetExceeded(Exception):
    """The run exceeded ``config.max_steps`` (likely a non-terminating test)."""


@dataclass
class RuntimeConfig:
    """Knobs of the simulated JVM and its scheduler / cost model."""

    cores: int = 4
    quantum: int = 400  # semantic steps per scheduling slice
    seed: int = 12345
    max_steps: int = 50_000_000
    # Cost model (arbitrary "cycle" units; ratios are what matters).
    interp_step_cost: int = 10
    compiled_step_cost: int = 1
    compile_cost_per_instruction: int = 25
    thread_switch_cost: int = 30
    gc_pause_cost: int = 3_000
    gc_period_allocations: int = 20_000
    deopt_cost: int = 400
    # After this many uncommon traps, a method is made not-entrant and
    # recompiled without the failing speculation (HotSpot's trap action).
    deopt_recompile_threshold: int = 5
    # Sideband fidelity: thread-switch records may disagree with the trace
    # timestamps by up to this many TSC units (paper Section 7.2).
    switch_timestamp_jitter: int = 0
    # Sampling-profiler support: take one (tsc, method) sample whenever the
    # TSC crosses a multiple of sample_interval (0 = disabled).  Each
    # sample costs sample_cost TSC units (the profiler's own overhead).
    sample_interval: int = 0
    sample_cost: int = 150
    # Emit branch events from JVM-internal code (GC, runtime stubs) at
    # addresses outside the code cache during GC pauses.  Real PT records
    # them unless the IP filter is programmed (paper §6, "Filtering Out
    # Irrelevant Data"); enables the filter's negative-control tests.
    emit_runtime_noise: bool = False
    jit: JITPolicy = field(default_factory=JITPolicy)


class ActMode(enum.Enum):
    INTERP = "interp"
    COMPILED = "compiled"
    INLINED = "inlined"


@dataclass
class Activation:
    """One activation record, possibly an inline frame of a compiled one."""

    frame: Frame
    mode: ActMode
    native: Optional[NativeCode] = None
    machine_pc: int = 0  # meaningful on COMPILED roots only
    root: Optional["Activation"] = None  # for INLINED: the compiled root
    ret_address: Optional[int] = None  # caller resume IP if caller compiled
    ctx: Tuple[Tuple[str, int], ...] = ()
    call_bci: int = -1  # bci of the outstanding call while a callee runs

    @property
    def machine_root(self) -> "Activation":
        return self.root if self.root is not None else self


@dataclass
class ThreadContext:
    """One simulated Java thread."""

    tid: int
    name: str
    activations: List[Activation] = field(default_factory=list)
    finished: bool = False
    result: Any = None
    uncaught: Any = None
    truth: List[Tuple[str, int]] = field(default_factory=list)
    steps: int = 0


@dataclass
class RunResult:
    """Everything a tracing run produces.

    The *online* side of JPortal consumes ``core_events`` (via the PT
    encoder/buffer), ``thread_switches``, ``template_table`` and
    ``code_cache`` (machine-code metadata).  The *evaluation* side consumes
    ``threads[i].truth`` (ground-truth control flow), ``method_self_cost``
    and the counters.
    """

    program: JProgram
    config: RuntimeConfig
    address_space: AddressSpace
    template_table: TemplateTable
    code_cache: CodeCache
    core_events: List[List[HardwareEvent]]
    thread_switches: List[ThreadSwitchRecord]
    threads: List[ThreadContext]
    statics: Statics
    method_self_cost: Dict[str, int]
    total_cost: int
    counters: Dict[str, int]
    samples: List[Tuple[int, str]] = field(default_factory=list)

    def truth_of(self, tid: int) -> List[Tuple[str, int]]:
        return self.threads[tid].truth

    def event_count(self) -> int:
        return sum(len(events) for events in self.core_events)


_ALLOC_OPS = (Op.NEW, Op.NEWARRAY, Op.ANEWARRAY)


class JVMRuntime:
    """Executes a program while producing PT-observable event streams."""

    def __init__(
        self,
        program: JProgram,
        config: Optional[RuntimeConfig] = None,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
    ):
        self.program = program
        self.config = config or RuntimeConfig()
        self.address_space = address_space
        self.templates = TemplateTable(address_space)
        self.code_cache = CodeCache(address_space)
        self.compiler = JITCompiler(program, self.code_cache, self.config.jit)
        self.statics = Statics()
        self.tsc = 0
        self.threads: List[ThreadContext] = []
        self.core_events: List[List[HardwareEvent]] = [
            [] for _ in range(self.config.cores)
        ]
        self.thread_switches: List[ThreadSwitchRecord] = []
        self.method_self_cost: Dict[str, int] = {}
        self.invocation_counts: Dict[str, int] = {}
        self.counters: Dict[str, int] = {
            "steps": 0,
            "steps_interp": 0,
            "steps_compiled": 0,
            "invocations": 0,
            "compiles": 0,
            "allocations": 0,
            "gc_pauses": 0,
            "thread_switches": 0,
            "exceptions": 0,
            "samples": 0,
            "osr_transitions": 0,
            "deopts": 0,
            "recompiles": 0,
        }
        self.backedge_counts: Dict[str, int] = {}
        self.deopt_counts: Dict[str, int] = {}
        self.samples: List[Tuple[int, str]] = []
        self._rng = random.Random(self.config.seed)
        self._allocations_since_gc = 0
        self._core_started = [False] * self.config.cores

    # -------------------------------------------------------------- thread API
    def add_thread(
        self,
        class_name: Optional[str] = None,
        method_name: Optional[str] = None,
        args: Tuple = (),
        name: Optional[str] = None,
    ) -> ThreadContext:
        """Register a thread; defaults to the program entry method."""
        if class_name is None:
            method = self.program.entry_method()
        else:
            method = self.program.method(class_name, method_name)
        tid = len(self.threads)
        thread = ThreadContext(tid=tid, name=name or ("thread-%d" % tid))
        thread.activations.append(
            Activation(frame=Frame.for_call(method, args), mode=ActMode.INTERP)
        )
        self.invocation_counts[method.qualified_name] = (
            self.invocation_counts.get(method.qualified_name, 0) + 1
        )
        self.threads.append(thread)
        return thread

    # ------------------------------------------------------------------- run
    def run(self) -> RunResult:
        """Run all registered threads to completion and collect the result."""
        if not self.threads:
            self.add_thread()
        ready = deque(self.threads)
        quantum = self.config.quantum
        while ready:
            for core in range(self.config.cores):
                if not ready:
                    break
                thread = ready.popleft()
                self._begin_quantum(core, thread)
                executed = 0
                while executed < quantum and not thread.finished:
                    self._step_thread(thread, core)
                    executed += 1
                # Descheduling: tracing on this core stops (the IP filter
                # sees other processes / the idle loop), which -- as on
                # real PT -- flushes the core's pending TNT packet.  This
                # matters for correctness: without the PGD barrier, bits
                # emitted after the thread returns to this core would be
                # packed into the stale pre-switch TNT packet and jump
                # the queue ahead of the thread's interim work elsewhere.
                self._emit(
                    core,
                    DisableEvent(
                        tsc=self.tsc,
                        ip=0 if thread.finished else self._current_ip(thread),
                    ),
                )
                if not thread.finished:
                    ready.append(thread)
        return RunResult(
            program=self.program,
            config=self.config,
            address_space=self.address_space,
            template_table=self.templates,
            code_cache=self.code_cache,
            core_events=self.core_events,
            thread_switches=self.thread_switches,
            threads=self.threads,
            statics=self.statics,
            method_self_cost=dict(self.method_self_cost),
            total_cost=self.tsc,
            counters=dict(self.counters),
            samples=list(self.samples),
        )

    # ------------------------------------------------------------- internals
    def _emit(self, core: int, event: HardwareEvent) -> None:
        self.core_events[core].append(event)

    def _begin_quantum(self, core: int, thread: ThreadContext) -> None:
        # Tracing resumes on this core for the scheduled thread (PGE).
        self._emit(core, EnableEvent(tsc=self.tsc, ip=self._current_ip(thread)))
        self._core_started[core] = True
        jitter = self.config.switch_timestamp_jitter
        recorded = self.tsc
        if jitter:
            recorded = max(0, self.tsc + self._rng.randint(-jitter, jitter))
        self.thread_switches.append(
            ThreadSwitchRecord(core=core, tid=thread.tid, tsc=recorded)
        )
        self.counters["thread_switches"] += 1
        self.tsc += self.config.thread_switch_cost

    def _current_ip(self, thread: ThreadContext) -> int:
        if not thread.activations:
            return 0
        act = thread.activations[-1]
        if act.mode is ActMode.INTERP:
            inst = act.frame.method.code[act.frame.bci]
            return self.templates.entry(inst.op)
        return act.machine_root.machine_pc

    def _charge(self, qname: str, cost: int) -> None:
        interval = self.config.sample_interval
        if interval:
            before = self.tsc // interval
            after = (self.tsc + cost) // interval
            if after > before:
                self.samples.append((self.tsc + cost, qname))
                self.counters["samples"] += 1
                self.tsc += self.config.sample_cost * (after - before)
        self.tsc += cost
        self.method_self_cost[qname] = self.method_self_cost.get(qname, 0) + cost

    def _budget_check(self) -> None:
        self.counters["steps"] += 1
        if self.counters["steps"] > self.config.max_steps:
            raise ExecutionBudgetExceeded(
                "exceeded %d steps" % self.config.max_steps
            )

    # ---------------------------------------------------------- stepping core
    def _step_thread(self, thread: ThreadContext, core: int) -> None:
        self._budget_check()
        thread.steps += 1
        act = thread.activations[-1]
        if act.mode is ActMode.INTERP:
            self._step_interpreted(thread, act, core)
        else:
            self._step_compiled(thread, act, core)

    # --- interpreted mode ----------------------------------------------------
    def _step_interpreted(
        self, thread: ThreadContext, act: Activation, core: int
    ) -> None:
        frame = act.frame
        method = frame.method
        inst = method.code[frame.bci]
        qname = method.qualified_name
        # Template dispatch: the indirect jump PT records.
        self._emit(core, TipEvent(tsc=self.tsc, target=self.templates.entry(inst.op)))
        self.counters["steps_interp"] += 1
        thread.truth.append((qname, frame.bci))
        if inst.op in _ALLOC_OPS:
            self._maybe_gc(core, thread)
        outcome = step(frame, self.program, self.statics)
        self._charge(qname, self.config.interp_step_cost)

        kind = outcome.kind
        if kind is OutcomeKind.BRANCH:
            self._emit(core, TntEvent(tsc=self.tsc, taken=outcome.taken))
            if outcome.next_bci <= frame.bci:
                self._count_back_edge(thread, act, core, outcome.next_bci)
            frame.bci = outcome.next_bci
        elif kind in (OutcomeKind.FALL, OutcomeKind.JUMP, OutcomeKind.SWITCH):
            if outcome.next_bci <= frame.bci and kind is not OutcomeKind.FALL:
                self._count_back_edge(thread, act, core, outcome.next_bci)
            frame.bci = outcome.next_bci
        elif kind is OutcomeKind.CALL:
            act.call_bci = frame.bci
            frame.bci += 1
            self._invoke(thread, core, outcome.callee, outcome.args, caller=act)
        elif kind is OutcomeKind.RETURN:
            self._do_return(thread, core, outcome.value)
        elif kind is OutcomeKind.THROW:
            implicit = inst.op is not Op.ATHROW
            self._dispatch_exception(
                thread,
                core,
                outcome.exception,
                implicit=implicit,
                source_ip=self.templates.entry(inst.op),
            )
        else:  # pragma: no cover - exhaustive
            raise AssertionError(kind)

    def _count_back_edge(
        self, thread: ThreadContext, act: Activation, core: int, header_bci: int
    ) -> None:
        """Back-edge counting for on-stack replacement (OSR).

        When a long-running interpreted loop crosses the OSR threshold,
        the activation is switched onto compiled code at the loop header:
        the semantic frame (locals, stack) carries over unchanged, and the
        transition is visible to PT as a TIP into the code cache -- which
        is exactly how the decoder discovers it.
        """
        threshold = self.config.jit.osr_threshold
        if not threshold:
            return
        qname = act.frame.method.qualified_name
        count = self.backedge_counts.get(qname, 0) + 1
        self.backedge_counts[qname] = count
        if count < threshold:
            return
        self.backedge_counts[qname] = 0
        method = act.frame.method
        if len(method.code) > self.config.jit.max_compile_size:
            return
        native = self.code_cache.lookup(qname)
        if native is None:
            native = self.compiler.compile(method, tsc=self.tsc)
            self.counters["compiles"] += 1
            self.tsc += self.config.compile_cost_per_instruction * len(
                native.instructions
            )
        osr_entry = native.entry_points.get(((), qname, header_bci))
        if osr_entry is None:
            return
        act.mode = ActMode.COMPILED
        act.native = native
        act.machine_pc = osr_entry
        self.counters["osr_transitions"] += 1
        self._emit(core, TipEvent(tsc=self.tsc, target=osr_entry))

    # --- compiled mode ---------------------------------------------------------
    def _step_compiled(self, thread: ThreadContext, act: Activation, core: int) -> None:
        root = act.machine_root
        native = root.native
        mi = native.at(root.machine_pc)
        semantic = native.semantic.get(mi.address)
        self.counters["steps_compiled"] += 1

        if semantic is None:
            # Synthetic instruction: prologue or layout jump.
            if mi.kind is MIKind.JMP_DIRECT:
                root.machine_pc = mi.target
            else:
                root.machine_pc = mi.end
            self._charge(native.method.qualified_name, self.config.compiled_step_cost)
            return

        if isinstance(semantic, SemGuard):
            self._step_guard(thread, act, core, mi, semantic)
            return
        if isinstance(semantic, SemInlineEnter):
            self._step_inline_enter(thread, act, core, mi, semantic)
            return
        if isinstance(semantic, SemInlineReturn):
            self._step_inline_return(thread, act, mi, semantic)
            return

        # SemBytecode: execute the bytecode's data effect on this frame.
        frame = act.frame
        frame.bci = semantic.bci
        qname = semantic.qname
        thread.truth.append((qname, semantic.bci))
        inst = frame.method.code[semantic.bci]
        if inst.op in _ALLOC_OPS:
            self._maybe_gc(core, thread)
        outcome = step(frame, self.program, self.statics)
        self._charge(qname, self.config.compiled_step_cost)

        kind = outcome.kind
        if kind is OutcomeKind.FALL:
            root.machine_pc = mi.end
        elif kind is OutcomeKind.BRANCH:
            self._emit(core, TntEvent(tsc=self.tsc, taken=outcome.taken))
            root.machine_pc = mi.target if outcome.taken else mi.end
        elif kind is OutcomeKind.JUMP:
            root.machine_pc = mi.target
        elif kind is OutcomeKind.SWITCH:
            target = native.entry_points[(semantic.ctx, qname, outcome.next_bci)]
            self._emit(core, TipEvent(tsc=self.tsc, target=target))
            root.machine_pc = target
        elif kind is OutcomeKind.CALL:
            act.call_bci = semantic.bci
            root.machine_pc = mi.end
            self._invoke(
                thread,
                core,
                outcome.callee,
                outcome.args,
                caller=act,
                ret_address=mi.end,
                direct=mi.kind is MIKind.CALL_DIRECT,
            )
        elif kind is OutcomeKind.RETURN:
            self._do_return(thread, core, outcome.value)
        elif kind is OutcomeKind.THROW:
            implicit = inst.op is not Op.ATHROW
            self._dispatch_exception(
                thread, core, outcome.exception, implicit=implicit, source_ip=mi.address
            )
        else:  # pragma: no cover - exhaustive
            raise AssertionError(kind)

    def _step_guard(self, thread, act, core, mi, semantic) -> None:
        """Speculative-inlining class check: pass falls into the inlined
        body; failure takes the branch to the uncommon-trap stub and
        deoptimises the activation back to the interpreter."""
        from .interpreter import JObject

        frame = act.frame
        ref = frame.method.code[semantic.bci].methodref
        receiver = frame.stack[-ref.arg_count] if ref.arg_count else None
        passes = (
            isinstance(receiver, JObject)
            and self.program.resolve_virtual(
                receiver.class_name, ref.method_name
            ).qualified_name
            == semantic.expected_qname
        )
        # The guard is a real machine branch: one TNT bit.
        self._emit(core, TntEvent(tsc=self.tsc, taken=not passes))
        self._charge(semantic.qname, self.config.compiled_step_cost)
        root = act.machine_root
        if passes:
            root.machine_pc = mi.end
            return
        self._deoptimize(thread, act, semantic.bci)

    def _deoptimize(self, thread: ThreadContext, act: Activation, call_bci: int) -> None:
        """Uncommon trap: materialise every frame sharing this activation's
        compiled root as an interpreter frame and resume there.

        The triggering frame re-executes the guarded invoke in the
        interpreter; enclosing inline frames resume after their call sites
        once their callees return.
        """
        root = act.machine_root
        trapped_qname = root.frame.method.qualified_name
        converted = [
            a
            for a in thread.activations
            if a is root or a.root is root
        ]
        for a in converted:
            a.mode = ActMode.INTERP
            if a is not act and a.call_bci >= 0:
                a.frame.bci = a.call_bci + 1
            a.native = None
            a.root = None
        act.frame.bci = call_bci
        self.counters["deopts"] += 1
        self.tsc += self.config.deopt_cost
        # Repeatedly trapping code is made not-entrant and recompiled
        # without the speculation; the reclaimed region becomes reusable,
        # so the offline side must resolve its addresses by epoch.
        count = self.deopt_counts.get(trapped_qname, 0) + 1
        self.deopt_counts[trapped_qname] = count
        old_code = self.code_cache.lookup(trapped_qname)
        if count >= self.config.deopt_recompile_threshold and old_code is not None:
            self.deopt_counts[trapped_qname] = 0
            # The region may only be reclaimed (and reused) once no other
            # activation still executes the old code -- otherwise the old
            # nmethod stays a zombie: unreachable for new calls but alive
            # for decode purposes.
            still_running = any(
                a.native is old_code
                for other in self.threads
                for a in other.activations
            )
            if not still_running:
                self.code_cache.evict(trapped_qname, tsc=self.tsc)
            method = root.frame.method
            if len(method.code) <= self.config.jit.max_compile_size:
                native = self.compiler.compile(
                    method, tsc=self.tsc, allow_speculation=False
                )
                self.counters["recompiles"] += 1
                self.tsc += self.config.compile_cost_per_instruction * len(
                    native.instructions
                )

    def _step_inline_enter(self, thread, act, core, mi, semantic) -> None:
        frame = act.frame
        frame.bci = semantic.bci
        qname = semantic.qname
        thread.truth.append((qname, semantic.bci))
        outcome = step(frame, self.program, self.statics)
        self._charge(qname, self.config.compiled_step_cost)
        root = act.machine_root
        if outcome.kind is OutcomeKind.THROW:
            # e.g. invokevirtual on a null receiver at an inlined site
            self._dispatch_exception(
                thread, core, outcome.exception, implicit=True, source_ip=mi.address
            )
            return
        assert outcome.kind is OutcomeKind.CALL
        callee = outcome.callee
        act.call_bci = semantic.bci
        self.counters["invocations"] += 1
        self.invocation_counts[callee.qualified_name] = (
            self.invocation_counts.get(callee.qualified_name, 0) + 1
        )
        inline_frame = Frame.for_call(callee, outcome.args)
        thread.activations.append(
            Activation(
                frame=inline_frame,
                mode=ActMode.INLINED,
                native=root.native,
                root=root,
                ctx=semantic.ctx + ((semantic.qname, semantic.bci),),
            )
        )
        root.machine_pc = mi.end  # falls into the inlined body

    def _step_inline_return(self, thread, act, mi, semantic) -> None:
        frame = act.frame
        frame.bci = semantic.bci
        qname = semantic.qname
        thread.truth.append((qname, semantic.bci))
        outcome = step(frame, self.program, self.statics)
        self._charge(qname, self.config.compiled_step_cost)
        assert outcome.kind is OutcomeKind.RETURN
        root = act.machine_root
        thread.activations.pop()
        caller = thread.activations[-1]
        if frame.method.returns_value:
            caller.frame.push(outcome.value)
        root.machine_pc = mi.target  # jump to the inline continuation

    # --- calls / returns ---------------------------------------------------------
    def _invoke(
        self,
        thread: ThreadContext,
        core: int,
        callee: JMethod,
        args: Tuple,
        caller: Activation,
        ret_address: Optional[int] = None,
        direct: bool = False,
    ) -> None:
        qname = callee.qualified_name
        self.counters["invocations"] += 1
        count = self.invocation_counts.get(qname, 0) + 1
        self.invocation_counts[qname] = count
        native = self.code_cache.lookup(qname)
        if native is None and self.compiler.should_compile(callee, count):
            native = self.compiler.compile(callee, tsc=self.tsc)
            self.counters["compiles"] += 1
            self.tsc += self.config.compile_cost_per_instruction * len(
                native.instructions
            )
        frame = Frame.for_call(callee, args)
        if native is not None:
            if not (direct and caller.mode is not ActMode.INTERP):
                # Indirect entry into compiled code produces a TIP; a
                # compiled direct call does not.
                self._emit(core, TipEvent(tsc=self.tsc, target=native.entry))
            thread.activations.append(
                Activation(
                    frame=frame,
                    mode=ActMode.COMPILED,
                    native=native,
                    machine_pc=native.entry,
                    ret_address=ret_address,
                )
            )
        else:
            # Interpreted callee: its first template dispatch TIP is the
            # observable entry.
            thread.activations.append(
                Activation(frame=frame, mode=ActMode.INTERP, ret_address=ret_address)
            )

    def _do_return(self, thread: ThreadContext, core: int, value: Any) -> None:
        done = thread.activations.pop()
        returns_value = done.frame.method.returns_value
        if done.mode is ActMode.COMPILED:
            # The RET machine instruction's TIP.
            target = (
                done.ret_address
                if done.ret_address is not None
                else self.templates.return_stub_entry
            )
            self._emit(core, TipEvent(tsc=self.tsc, target=target))
        if not thread.activations:
            thread.finished = True
            thread.result = value
            return
        caller = thread.activations[-1]
        if returns_value:
            caller.frame.push(value)
        if caller.mode is not ActMode.INTERP:
            root = caller.machine_root
            root.machine_pc = done.ret_address
            if done.mode is ActMode.INTERP:
                # Interpreter returning into compiled code: the c2i bridge
                # lands at the caller's resume address.
                self._emit(core, TipEvent(tsc=self.tsc, target=done.ret_address))
        caller.call_bci = -1

    # --- exceptions -------------------------------------------------------------
    def _dispatch_exception(
        self,
        thread: ThreadContext,
        core: int,
        exception,
        implicit: bool,
        source_ip: int,
    ) -> None:
        self.counters["exceptions"] += 1
        if implicit:
            self._emit(core, FupEvent(tsc=self.tsc, ip=source_ip))
        acts = thread.activations
        top = True
        while acts:
            act = acts[-1]
            look_bci = act.frame.bci if top else act.call_bci
            handler = None
            if look_bci >= 0:
                handler = act.frame.method.handler_for(look_bci)
            if handler is not None:
                act.frame.stack.clear()
                act.frame.stack.append(exception)
                act.frame.bci = handler.handler
                if act.mode is not ActMode.INTERP:
                    root = act.machine_root
                    address = root.native.entry_points[
                        (act.ctx, act.frame.method.qualified_name, handler.handler)
                    ]
                    root.machine_pc = address
                    self._emit(core, TipEvent(tsc=self.tsc, target=address))
                return
            top = False
            acts.pop()
        thread.uncaught = exception
        thread.finished = True

    # --- GC ------------------------------------------------------------------------
    def _maybe_gc(self, core: int, thread: ThreadContext) -> None:
        self.counters["allocations"] += 1
        self._allocations_since_gc += 1
        if self._allocations_since_gc < self.config.gc_period_allocations:
            return
        self._allocations_since_gc = 0
        self.counters["gc_pauses"] += 1
        ip = self._current_ip(thread)
        self._emit(core, DisableEvent(tsc=self.tsc, ip=ip))
        if self.config.emit_runtime_noise:
            # The collector's own branches: real PT would trace these too
            # unless the IP filter is set to the code-cache range.
            base = self.address_space.runtime_base
            for offset in range(4):
                self._emit(
                    core,
                    TipEvent(tsc=self.tsc + offset, target=base + 0x40 * offset),
                )
                self._emit(core, TntEvent(tsc=self.tsc + offset, taken=bool(offset & 1)))
        self.tsc += self.config.gc_pause_cost
        self._emit(core, EnableEvent(tsc=self.tsc, ip=ip))


def run_program(
    program: JProgram,
    config: Optional[RuntimeConfig] = None,
    thread_entries: Optional[List[Tuple[str, str, Tuple]]] = None,
) -> RunResult:
    """Convenience: run *program* (entry method, plus optional extra threads).

    ``thread_entries`` is a list of ``(class_name, method_name, args)``.
    """
    runtime = JVMRuntime(program, config)
    runtime.add_thread(name="main")
    for class_name, method_name, args in thread_entries or ():
        runtime.add_thread(class_name, method_name, args)
    return runtime.run()
