"""Intra-method control-flow graphs at basic-block granularity.

The block-level CFG is used by the JIT (block layout), by Ball-Larus path
profiling (edge instrumentation on the loop-free DAG), and by coverage
clients.  The paper's NFA works at *instruction* granularity and is built
separately in :mod:`repro.jvm.icfg`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .model import JMethod
from .opcodes import Kind


class EdgeKind(enum.Enum):
    """Why control may flow from one block to another."""

    FALLTHROUGH = "fallthrough"  # straight-line or branch-not-taken
    TAKEN = "taken"  # conditional branch taken
    JUMP = "jump"  # unconditional goto
    SWITCH = "switch"  # one switch arm
    EXCEPTION = "exception"  # into a handler


@dataclass(frozen=True)
class Edge:
    """A CFG edge between block ids."""

    src: int
    dst: int
    kind: EdgeKind

    def __str__(self):
        return "B%d -%s-> B%d" % (self.src, self.kind.value, self.dst)


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start`` is the bci of the first instruction; ``end`` is one past the
    bci of the last.
    """

    block_id: int
    start: int
    end: int
    successors: List[Edge] = field(default_factory=list)
    predecessors: List[Edge] = field(default_factory=list)

    def bcis(self):
        return range(self.start, self.end)

    @property
    def last_bci(self) -> int:
        return self.end - 1

    def __len__(self):
        return self.end - self.start

    def __str__(self):
        return "B%d[%d..%d)" % (self.block_id, self.start, self.end)


class CFG:
    """Basic-block control-flow graph of one method."""

    def __init__(self, method: JMethod):
        self.method = method
        self.blocks: List[BasicBlock] = []
        self._block_of_bci: Dict[int, int] = {}
        self._build()

    # --------------------------------------------------------------- building
    def _leaders(self) -> List[int]:
        code = self.method.code
        leaders = {0}
        for inst in code:
            kind = inst.kind
            if kind in (Kind.COND, Kind.GOTO, Kind.SWITCH):
                for target in inst.successors_within(len(code)):
                    leaders.add(target)
                if inst.bci + 1 < len(code):
                    leaders.add(inst.bci + 1)
            elif kind in (Kind.RETURN, Kind.THROW):
                if inst.bci + 1 < len(code):
                    leaders.add(inst.bci + 1)
        for handler in self.method.handlers:
            leaders.add(handler.handler)
        return sorted(leaders)

    def _build(self) -> None:
        code = self.method.code
        leaders = self._leaders()
        bounds = leaders + [len(code)]
        for block_id, (start, end) in enumerate(zip(bounds, bounds[1:])):
            block = BasicBlock(block_id=block_id, start=start, end=end)
            self.blocks.append(block)
            for bci in range(start, end):
                self._block_of_bci[bci] = block_id
        for block in self.blocks:
            last = code[block.last_bci]
            kind = last.kind
            if kind is Kind.COND:
                self._add_edge(block.block_id, last.bci + 1, EdgeKind.FALLTHROUGH)
                self._add_edge(block.block_id, last.target, EdgeKind.TAKEN)
            elif kind is Kind.GOTO:
                self._add_edge(block.block_id, last.target, EdgeKind.JUMP)
            elif kind is Kind.SWITCH:
                for target in last.switch.all_targets():
                    self._add_edge(block.block_id, target, EdgeKind.SWITCH)
            elif kind in (Kind.RETURN, Kind.THROW):
                pass
            elif block.end < len(code):
                self._add_edge(block.block_id, block.end, EdgeKind.FALLTHROUGH)
        # Exception edges: any covered block may transfer to its handler.
        for handler in self.method.handlers:
            handler_block = self._block_of_bci[handler.handler]
            for block in self.blocks:
                if any(handler.covers(bci) for bci in block.bcis()):
                    edge = Edge(block.block_id, handler_block, EdgeKind.EXCEPTION)
                    if edge not in block.successors:
                        block.successors.append(edge)
                        self.blocks[handler_block].predecessors.append(edge)

    def _add_edge(self, src_block: int, dst_bci: int, kind: EdgeKind) -> None:
        dst_block = self._block_of_bci[dst_bci]
        edge = Edge(src_block, dst_block, kind)
        self.blocks[src_block].successors.append(edge)
        self.blocks[dst_block].predecessors.append(edge)

    # ---------------------------------------------------------------- queries
    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block_of(self, bci: int) -> BasicBlock:
        return self.blocks[self._block_of_bci[bci]]

    def edges(self) -> List[Edge]:
        return [edge for block in self.blocks for edge in block.successors]

    def reverse_postorder(self, include_exception_edges: bool = True) -> List[int]:
        """Block ids in reverse postorder from the entry.

        Unreachable blocks (e.g. handlers never targeted by a normal edge)
        are appended afterwards in id order so layout covers all code.
        """
        visited = set()
        postorder: List[int] = []

        def visit(block_id: int) -> None:
            stack = [(block_id, iter(self._succ_ids(block_id, include_exception_edges)))]
            visited.add(block_id)
            while stack:
                current, successor_iter = stack[-1]
                advanced = False
                for succ in successor_iter:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append(
                            (succ, iter(self._succ_ids(succ, include_exception_edges)))
                        )
                        advanced = True
                        break
                if not advanced:
                    postorder.append(current)
                    stack.pop()

        visit(0)
        order = list(reversed(postorder))
        for block in self.blocks:
            if block.block_id not in visited:
                order.append(block.block_id)
        return order

    def successor_ids(
        self, block_id: int, include_exception_edges: bool = True
    ) -> List[int]:
        """Distinct successor block ids, in edge order."""
        return self._succ_ids(block_id, include_exception_edges)

    def predecessor_ids(
        self, block_id: int, include_exception_edges: bool = True
    ) -> List[int]:
        """Distinct predecessor block ids, in edge order."""
        result = []
        for edge in self.blocks[block_id].predecessors:
            if not include_exception_edges and edge.kind is EdgeKind.EXCEPTION:
                continue
            if edge.src not in result:
                result.append(edge.src)
        return result

    def _succ_ids(self, block_id: int, include_exception_edges: bool) -> List[int]:
        result = []
        for edge in self.blocks[block_id].successors:
            if not include_exception_edges and edge.kind is EdgeKind.EXCEPTION:
                continue
            if edge.dst not in result:
                result.append(edge.dst)
        return result

    def back_edges(self) -> List[Edge]:
        """Edges whose removal makes the CFG acyclic (DFS retreating edges)."""
        color: Dict[int, int] = {}
        result: List[Edge] = []

        def visit(block_id: int) -> None:
            stack: List[Tuple[int, int]] = [(block_id, 0)]
            color[block_id] = 1
            while stack:
                current, edge_index = stack.pop()
                successors = self.blocks[current].successors
                while edge_index < len(successors):
                    edge = successors[edge_index]
                    edge_index += 1
                    state = color.get(edge.dst, 0)
                    if state == 1:
                        result.append(edge)
                    elif state == 0:
                        stack.append((current, edge_index))
                        color[edge.dst] = 1
                        stack.append((edge.dst, 0))
                        break
                else:
                    color[current] = 2

        for block in self.blocks:
            if color.get(block.block_id, 0) == 0:
                visit(block.block_id)
        return result

    def __str__(self):
        lines = ["CFG(%s)" % self.method.qualified_name]
        for block in self.blocks:
            succ = ", ".join(str(edge) for edge in block.successors)
            lines.append("  %s -> [%s]" % (block, succ))
        return "\n".join(lines)


def loop_depths(cfg: CFG) -> Dict[int, int]:
    """Approximate loop-nesting depth per block.

    Each back edge ``(latch -> header)`` defines a natural-loop body found
    by walking predecessors from the latch until the header; a block's
    depth is the number of loop bodies containing it.  Used by the JIT's
    hotness heuristics and by workload statistics.
    """
    depths = {block.block_id: 0 for block in cfg.blocks}
    for back in cfg.back_edges():
        header, latch = back.dst, back.src
        body = {header, latch}
        work = [latch]
        while work:
            current = work.pop()
            if current == header:
                continue
            for edge in cfg.blocks[current].predecessors:
                if edge.src not in body:
                    body.add(edge.src)
                    work.append(edge.src)
        for member in body:
            depths[member] += 1
    return depths
