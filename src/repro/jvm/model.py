"""Program model: methods, classes, and whole programs.

Bytecode indices are instruction indices (every instruction is one unit
long); this loses nothing relevant to control-flow reconstruction and keeps
branch targets readable.

Dynamic dispatch is modelled with a single-inheritance class hierarchy:
``invokevirtual`` resolves against the *runtime* receiver class by walking
the superclass chain, while the static ICFG must consider every subtype's
override -- exactly the source of interprocedural ambiguity the paper's
NFA formulation deals with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import Instruction, MethodRef
from .opcodes import Kind


class ProgramError(Exception):
    """Raised for malformed programs (unknown classes, methods, fields)."""


@dataclass(frozen=True)
class ExceptionHandler:
    """One entry of a method's exception table.

    Covers bcis in ``[start, end)``; control transfers to ``handler`` when
    an exception is thrown in range.
    """

    start: int
    end: int
    handler: int

    def covers(self, bci: int) -> bool:
        return self.start <= bci < self.end


@dataclass
class JMethod:
    """A bytecode method.

    Attributes:
        class_name: Owning class.
        name: Simple method name.
        arg_count: Number of arguments (including the receiver for
            instance methods).
        returns_value: Whether the method pushes a result on return.
        max_locals: Size of the local-variable array.
        code: Instruction list; ``code[i].bci == i``.
        handlers: Exception table.
        is_static: Static methods dispatch directly.
    """

    class_name: str
    name: str
    arg_count: int
    returns_value: bool
    max_locals: int
    code: List[Instruction] = field(default_factory=list)
    handlers: List[ExceptionHandler] = field(default_factory=list)
    is_static: bool = True

    @property
    def qualified_name(self) -> str:
        return "%s.%s" % (self.class_name, self.name)

    @property
    def ref(self) -> MethodRef:
        return MethodRef(self.class_name, self.name, self.arg_count, self.returns_value)

    def handler_for(self, bci: int) -> Optional[ExceptionHandler]:
        """Innermost (first-listed) handler covering *bci*, if any."""
        for handler in self.handlers:
            if handler.covers(bci):
                return handler
        return None

    def instruction_at(self, bci: int) -> Instruction:
        return self.code[bci]

    def __len__(self):
        return len(self.code)

    def __str__(self):
        lines = ["%s(args=%d):" % (self.qualified_name, self.arg_count)]
        for inst in self.code:
            lines.append("  %3d: %s" % (inst.bci, inst))
        return "\n".join(lines)


@dataclass
class JClass:
    """A class: named methods, fields, and an optional superclass."""

    name: str
    superclass: Optional[str] = None
    methods: Dict[str, JMethod] = field(default_factory=dict)
    fields: Tuple[str, ...] = ()

    def add_method(self, method: JMethod) -> None:
        if method.class_name != self.name:
            raise ProgramError(
                "method %s added to class %s" % (method.qualified_name, self.name)
            )
        self.methods[method.name] = method


class JProgram:
    """A whole program: a set of classes plus an entry method.

    Provides the resolution queries the rest of the system needs:
    runtime dispatch (:meth:`resolve_virtual`), static possible-target
    enumeration (:meth:`possible_targets`), and method iteration.
    """

    def __init__(self, name: str, entry: Optional[MethodRef] = None):
        self.name = name
        self.classes: Dict[str, JClass] = {}
        self.entry = entry
        self._subclasses: Dict[str, List[str]] = {}

    # ---------------------------------------------------------- construction
    def add_class(self, jclass: JClass) -> JClass:
        if jclass.name in self.classes:
            raise ProgramError("duplicate class %s" % jclass.name)
        self.classes[jclass.name] = jclass
        self._subclasses.setdefault(jclass.name, [])
        if jclass.superclass is not None:
            self._subclasses.setdefault(jclass.superclass, []).append(jclass.name)
        return jclass

    def set_entry(self, class_name: str, method_name: str) -> None:
        method = self.method(class_name, method_name)
        self.entry = method.ref

    # ---------------------------------------------------------------- lookup
    def jclass(self, name: str) -> JClass:
        try:
            return self.classes[name]
        except KeyError:
            raise ProgramError("unknown class %s" % name) from None

    def method(self, class_name: str, method_name: str) -> JMethod:
        """Find *method_name* on *class_name* or its superclasses."""
        current = class_name
        while current is not None:
            jclass = self.jclass(current)
            if method_name in jclass.methods:
                return jclass.methods[method_name]
            current = jclass.superclass
        raise ProgramError("unknown method %s.%s" % (class_name, method_name))

    def entry_method(self) -> JMethod:
        if self.entry is None:
            raise ProgramError("program %s has no entry method" % self.name)
        return self.method(self.entry.class_name, self.entry.method_name)

    def methods(self):
        """Iterate over all methods, in deterministic order."""
        for class_name in sorted(self.classes):
            jclass = self.classes[class_name]
            for method_name in sorted(jclass.methods):
                yield jclass.methods[method_name]

    # ------------------------------------------------------------- dispatch
    def resolve_virtual(self, receiver_class: str, method_name: str) -> JMethod:
        """Runtime dispatch: the method the JVM actually invokes."""
        return self.method(receiver_class, method_name)

    def subclasses_of(self, class_name: str) -> List[str]:
        """Transitive subclasses of *class_name* (not including itself)."""
        result: List[str] = []
        work = list(self._subclasses.get(class_name, ()))
        while work:
            current = work.pop()
            result.append(current)
            work.extend(self._subclasses.get(current, ()))
        return result

    def possible_targets(self, ref: MethodRef, virtual: bool) -> List[JMethod]:
        """All methods an invoke could reach, for static ICFG construction.

        For static/special calls this is the single resolved method.  For
        virtual calls it is the resolved method plus every override in a
        subtype -- the static over-approximation the ICFG needs.
        """
        resolved = self.method(ref.class_name, ref.method_name)
        if not virtual:
            return [resolved]
        targets = [resolved]
        for sub in self.subclasses_of(ref.class_name):
            jclass = self.classes[sub]
            if ref.method_name in jclass.methods:
                override = jclass.methods[ref.method_name]
                if override is not resolved:
                    targets.append(override)
        return targets

    # ------------------------------------------------------------ statistics
    def stats(self) -> Dict[str, int]:
        """Size statistics in the spirit of the paper's Table 1."""
        n_methods = 0
        n_instructions = 0
        n_branches = 0
        n_calls = 0
        for method in self.methods():
            n_methods += 1
            n_instructions += len(method.code)
            for inst in method.code:
                if inst.kind in (Kind.COND, Kind.SWITCH):
                    n_branches += 1
                elif inst.kind is Kind.CALL:
                    n_calls += 1
        return {
            "classes": len(self.classes),
            "methods": n_methods,
            "instructions": n_instructions,
            "branches": n_branches,
            "call_sites": n_calls,
        }

    def __str__(self):
        return "JProgram(%s: %d classes)" % (self.name, len(self.classes))
