"""Template interpreter machine-code layout.

During JVM initialisation the template interpreter assembles one machine
code *template* per bytecode opcode; executing a bytecode is an indirect
jump to its template's entry (Section 2 of the paper).  JPortal's
interpreter-mode metadata is exactly the per-opcode address range table
built here (Section 3.1, Figure 2(c)).

We reproduce two details that matter to decoding:

* distinct templates for the ``_n`` specialised forms (so a TIP reveals
  ``iload_0`` vs ``iload_1``);
* *non-contiguous* templates for some handlers ("for certain cases where
  the machine code for a byte code handler is non-contiguous, multiple
  sub-ranges could be recorded") -- conditional-branch templates get a
  second sub-range, exercising multi-range matching.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from .machine import DEFAULT_ADDRESS_SPACE, AddressSpace
from .opcodes import Kind, Op, info


class TemplateTable:
    """Opcode -> machine address range(s), with reverse lookup.

    The layout is deterministic for a given address space, mirroring how a
    JVM's template table is fixed once the VM has initialised.
    """

    #: main template size in bytes; roughly the scale of real templates
    MAIN_SIZE = 0x60
    #: secondary (non-contiguous) range size for conditional handlers
    AUX_SIZE = 0x20
    #: gap between consecutive templates
    GAP = 0x20

    def __init__(self, address_space: AddressSpace = DEFAULT_ADDRESS_SPACE):
        self.address_space = address_space
        self._ranges: Dict[Op, Tuple[Tuple[int, int], ...]] = {}
        self._entries: Dict[Op, int] = {}
        cursor = address_space.template_base
        aux_cursor = None
        ops = sorted(Op, key=int)
        # First lay out the main ranges, then auxiliary sub-ranges after
        # them, so auxiliary ranges are genuinely discontiguous.
        for op in ops:
            start = cursor
            end = start + self.MAIN_SIZE
            self._ranges[op] = ((start, end),)
            self._entries[op] = start
            cursor = end + self.GAP
        aux_cursor = cursor + 0x1000
        for op in ops:
            if info(op).kind is Kind.COND:
                start = aux_cursor
                end = start + self.AUX_SIZE
                self._ranges[op] = self._ranges[op] + ((start, end),)
                aux_cursor = end + self.GAP
        # Return stub: the interpreter entry point that compiled code
        # returns to when its caller is interpreted (c2i continuation).
        stub_start = aux_cursor + 0x100
        self.return_stub: Tuple[int, int] = (stub_start, stub_start + 0x40)
        aux_cursor = self.return_stub[1]
        if aux_cursor >= address_space.template_limit:
            raise ValueError("template space overflow")
        # Sorted interval index for reverse lookup.
        self._starts: List[int] = []
        self._intervals: List[Tuple[int, int, Op]] = []
        for op, ranges in self._ranges.items():
            for start, end in ranges:
                self._intervals.append((start, end, op))
        self._intervals.sort()
        self._starts = [interval[0] for interval in self._intervals]

    # ---------------------------------------------------------------- queries
    def entry(self, op: Op) -> int:
        """Entry address of *op*'s template (the dispatch TIP target)."""
        return self._entries[op]

    def ranges(self, op: Op) -> Tuple[Tuple[int, int], ...]:
        """All ``[start, end)`` sub-ranges of *op*'s template."""
        return self._ranges[op]

    def op_at(self, address: int) -> Optional[Op]:
        """The opcode whose template contains *address*, or ``None``."""
        position = bisect_right(self._starts, address) - 1
        if position < 0:
            return None
        start, end, op = self._intervals[position]
        if start <= address < end:
            return op
        return None

    @property
    def return_stub_entry(self) -> int:
        """Target IP of a compiled method's ``ret`` into the interpreter."""
        return self.return_stub[0]

    def is_return_stub(self, address: int) -> bool:
        start, end = self.return_stub
        return start <= address < end

    def ranges_of(self, op: Op) -> Optional[Tuple[Tuple[int, int], ...]]:
        """Like :meth:`ranges` but ``None`` for an unknown opcode.

        The observability classifier uses this as the equivalence token a
        dispatch TIP reveals: two opcodes are told apart exactly when
        their range tuples differ.
        """
        return self._ranges.get(op)

    def distinguishes(self, op_a: Op, op_b: Op) -> bool:
        """Whether a dispatch TIP can tell *op_a* from *op_b* apart.

        True iff their template address ranges are disjoint -- which the
        layout above guarantees for distinct opcodes, but the classifier
        asks rather than assumes so a metadata-level aliasing bug would
        surface as SILENT edges instead of silent misdecoding.
        """
        if op_a == op_b:
            return False
        ranges_a = self._ranges.get(op_a, ())
        ranges_b = self._ranges.get(op_b, ())
        for start_a, end_a in ranges_a:
            for start_b, end_b in ranges_b:
                if start_a < end_b and start_b < end_a:
                    return False
        return True

    def metadata(self) -> Dict[str, Tuple[Tuple[int, int], ...]]:
        """Exportable metadata: mnemonic -> sub-ranges (Figure 2(c))."""
        exported = {info(op).mnemonic: ranges for op, ranges in self._ranges.items()}
        exported["<return-stub>"] = (self.return_stub,)
        return exported

    def __len__(self):
        return len(self._ranges)
