"""Bytecode instruction objects and their trace-symbol form.

An :class:`Instruction` is one bytecode instruction at a fixed bytecode
index (bci) inside a method.  Its :meth:`Instruction.symbol` is the
*observable identity* a PT trace reveals for interpreted execution: the
(possibly ``_n``-specialised) opcode, without operand values for generic
forms.  Symbols are the alphabet Sigma of the paper's Definition 4.1 NFA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import Kind, Op, info


@dataclass(frozen=True)
class SwitchTable:
    """Jump table of a ``tableswitch``/``lookupswitch``.

    Attributes:
        cases: Mapping from int key to target bci.
        default: Target bci when no case matches.
    """

    cases: Tuple[Tuple[int, int], ...]
    default: int

    def target_for(self, key: int) -> int:
        for case_key, target in self.cases:
            if case_key == key:
                return target
        return self.default

    def all_targets(self) -> Tuple[int, ...]:
        seen = []
        for _, target in self.cases:
            if target not in seen:
                seen.append(target)
        if self.default not in seen:
            seen.append(self.default)
        return tuple(seen)


@dataclass(frozen=True)
class MethodRef:
    """Symbolic reference to a callee method (constant-pool entry)."""

    class_name: str
    method_name: str
    arg_count: int
    returns_value: bool

    def __str__(self):
        return "%s.%s/%d" % (self.class_name, self.method_name, self.arg_count)


@dataclass(frozen=True)
class FieldRef:
    """Symbolic reference to a field (constant-pool entry)."""

    class_name: str
    field_name: str

    def __str__(self):
        return "%s.%s" % (self.class_name, self.field_name)


@dataclass(frozen=True)
class Instruction:
    """One bytecode instruction.

    Attributes:
        op: Opcode.
        bci: Bytecode index within the owning method.
        index: Local-variable index (loads/stores/iinc), if any.
        const: Immediate constant (bipush/sipush/ldc/iinc), if any.
        target: Branch target bci (conditionals, goto), if any.
        methodref: Callee reference (invokes), if any.
        fieldref: Field reference (get/put), if any.
        classref: Class name (new/anewarray), if any.
        switch: Jump table (switch opcodes), if any.
    """

    op: Op
    bci: int
    index: Optional[int] = None
    const: Optional[int] = None
    target: Optional[int] = None
    methodref: Optional[MethodRef] = None
    fieldref: Optional[FieldRef] = None
    classref: Optional[str] = None
    switch: Optional[SwitchTable] = field(default=None)

    @property
    def kind(self) -> Kind:
        return info(self.op).kind

    @property
    def is_control(self) -> bool:
        return info(self.op).is_control

    def symbol(self) -> Op:
        """The observable trace symbol for this instruction.

        A PT trace of interpreted code reveals exactly which template ran,
        i.e. the opcode (with ``_n`` specialisation), but not the operand
        bytes the template fetched from the method body.
        """
        return self.op

    def successors_within(self, code_length: int) -> Tuple[int, ...]:
        """Possible next bcis *within the same method*.

        Calls fall through (the interprocedural edge is the ICFG's job);
        returns and throws have no intra-method successor.
        """
        kind = self.kind
        if kind is Kind.COND:
            return (self.bci + 1, self.target)
        if kind is Kind.GOTO:
            return (self.target,)
        if kind is Kind.SWITCH:
            return self.switch.all_targets()
        if kind in (Kind.RETURN, Kind.THROW):
            return ()
        next_bci = self.bci + 1
        if next_bci < code_length:
            return (next_bci,)
        return ()

    def __str__(self):
        parts = [info(self.op).mnemonic]
        if self.index is not None and self.op not in ():
            parts.append(str(self.index))
        if self.const is not None:
            parts.append(str(self.const))
        if self.target is not None:
            parts.append("-> %d" % self.target)
        if self.methodref is not None:
            parts.append(str(self.methodref))
        if self.fieldref is not None:
            parts.append(str(self.fieldref))
        if self.classref is not None:
            parts.append(self.classref)
        if self.switch is not None:
            parts.append(
                "{%s, default -> %d}"
                % (
                    ", ".join("%d -> %d" % kv for kv in self.switch.cases),
                    self.switch.default,
                )
            )
        return " ".join(parts)
