"""Synthetic DaCapo-like benchmark subjects.

Nine subjects named after the nine DaCapo programs the paper evaluates
(Table 1), each built in our bytecode ISA with the workload *character*
that drives the paper's observed behaviour:

========  ==========================================================
avrora    instruction-dispatch simulator: tableswitch loop, very hot
batik     rasteriser: nested arithmetic loops, small inlinable helpers
fop       layout tree: recursion + virtual dispatch + exceptions
h2        hash-table database: multi-threaded transactions over arrays
jython    stack-machine interpreter: call-heavy dispatch loop
luindex   indexer: binary search + array insertion, branchy
lusearch  search: posting-list merge joins, multi-threaded
pmd       AST rule checker: many small virtual predicates, multi-threaded
sunflow   ray tracer: fixed-point arithmetic inner loops, highest
          trace-generation rate
========  ==========================================================

Sizes are scaled to simulator speed: ``size`` is roughly the number of
outer-loop iterations / transactions; the default produces tens of
thousands of executed bytecodes per subject.  ``Subject.run`` executes the
workload and returns the :class:`~repro.jvm.runtime.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..jvm.assembler import MethodAssembler
from ..jvm.jit import JITPolicy
from ..jvm.model import JClass, JProgram
from ..jvm.runtime import JVMRuntime, RunResult, RuntimeConfig
from ..jvm.verifier import verify_program

ThreadEntry = Tuple[str, str, Tuple]


@dataclass
class Subject:
    """One benchmark subject."""

    name: str
    program: JProgram
    extra_threads: List[ThreadEntry] = field(default_factory=list)
    description: str = ""
    # Suggested call sites to hide from the static ICFG (reflection-style
    # dispatch); used by the reconstruction experiments.
    opaque_call_sites: Tuple = ()

    @property
    def threaded(self) -> bool:
        return bool(self.extra_threads)

    def make_runtime(self, config: Optional[RuntimeConfig] = None) -> JVMRuntime:
        runtime = JVMRuntime(self.program, config or default_config())
        runtime.add_thread(name="main")
        for class_name, method_name, args in self.extra_threads:
            runtime.add_thread(class_name, method_name, args)
        return runtime

    def run(self, config: Optional[RuntimeConfig] = None) -> RunResult:
        return self.make_runtime(config).run()


def default_config(**overrides) -> RuntimeConfig:
    """Runtime configuration used by the evaluation harness."""
    config = RuntimeConfig(
        cores=4,
        quantum=300,
        jit=JITPolicy(hot_threshold=8),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _finish(program: JProgram) -> JProgram:
    verify_program(program)
    return program


# --------------------------------------------------------------------- shared
def _emit_lcg(asm: MethodAssembler, seed_local: int) -> None:
    """seed = (seed * 1103515245 + 12345) & 0x7fffffff, in bytecode."""
    asm.load(seed_local)
    asm.const(1103515245)
    asm.imul()
    asm.const(12345)
    asm.iadd()
    asm.const(0x7FFFFFFF)
    asm.iand()
    asm.store(seed_local)


def _rand_method(class_name: str) -> MethodAssembler:
    """static int rand(int seed) -> next seed (shared PRNG helper)."""
    asm = MethodAssembler(class_name, "rand", arg_count=1, returns_value=True)
    _emit_lcg(asm, 0)
    asm.load(0).ireturn()
    return asm


# --------------------------------------------------------------------- avrora
def build_avrora(size: int = 4_000) -> Subject:
    """AVR simulator: fetch/decode/execute loop with a tableswitch.

    Locals in ``main``: 0=steps-left, 1=pc, 2=firmware, 3=regs, 4=word,
    5=opcode, 6=operand, 7=scratch.
    """
    prog_len = 64
    cls = JClass("Avrora")

    gen = MethodAssembler("Avrora", "firmware", arg_count=1, returns_value=True)
    # locals: 0=seed, 1=arr, 2=i
    gen.const(prog_len).newarray().astore(1)
    gen.const(0).store(2)
    gen.label("head")
    gen.load(2).const(prog_len).if_icmpge("done")
    _emit_lcg(gen, 0)
    gen.aload(1).load(2).load(0).iastore()
    gen.iinc(2, 1).goto("head")
    gen.label("done")
    gen.aload(1).areturn()
    cls.add_method(gen.build())

    alu = MethodAssembler("Avrora", "alu", arg_count=3, returns_value=True)
    # locals: 0=a, 1=b, 2=op-kind
    alu.load(2).ifne("sub")
    alu.load(0).load(1).iadd().ireturn()
    alu.label("sub")
    alu.load(2).const(1).if_icmpne("xor")
    alu.load(0).load(1).isub().ireturn()
    alu.label("xor")
    alu.load(0).load(1).ixor().ireturn()
    cls.add_method(alu.build())

    main = MethodAssembler("Avrora", "main", arg_count=0, returns_value=True)
    main.const(size).store(0)
    main.const(0).store(1)
    main.const(20251).invokestatic("Avrora", "firmware", 1, True).astore(2)
    main.const(8).newarray().astore(3)
    main.label("loop")
    main.load(0).ifle("halt")
    # word = firmware[pc]; opcode = word & 7; operand = (word >> 3) % 64
    main.aload(2).load(1).iaload().store(4)
    main.load(4).const(7).iand().store(5)
    main.load(4).const(3).ishr().const(prog_len).irem().store(6)
    main.load(5).tableswitch(
        {0: "op_add", 1: "op_sub", 2: "op_xor", 3: "op_jmp", 4: "op_brz",
         5: "op_ld", 6: "op_st"},
        "op_nop",
    )
    main.label("op_add")
    main.aload(3).const(0)
    main.aload(3).const(0).iaload()
    main.load(6).const(0).invokestatic("Avrora", "alu", 3, True)
    main.iastore().goto("next")
    main.label("op_sub")
    main.aload(3).const(1)
    main.aload(3).const(1).iaload()
    main.load(6).const(1).invokestatic("Avrora", "alu", 3, True)
    main.iastore().goto("next")
    main.label("op_xor")
    main.aload(3).const(2)
    main.aload(3).const(2).iaload()
    main.load(6).const(2).invokestatic("Avrora", "alu", 3, True)
    main.iastore().goto("next")
    main.label("op_jmp")
    # A timer interrupt (regs[0], ticked every cycle) occasionally forces
    # fallthrough, so jump-only firmware cycles cannot trap the pc.
    main.aload(3).const(0).iaload().const(3).iand().ifeq("next")
    main.load(1).load(6).iadd().const(prog_len).irem().store(1).goto("count")
    main.label("op_brz")
    main.aload(3).const(0).iaload().const(1).iand().ifne("next")
    main.load(6).store(1).goto("count")
    main.label("op_ld")
    main.aload(3).const(3).aload(2).load(6).iaload().iastore().goto("next")
    main.label("op_st")
    main.aload(3).const(4).load(6).iastore().goto("next")
    main.label("op_nop")
    main.goto("next")
    main.label("next")
    main.load(1).const(1).iadd().const(prog_len).irem().store(1)
    main.label("count")
    # timer tick: regs[0]++
    main.aload(3).const(0)
    main.aload(3).const(0).iaload().const(1).iadd()
    main.iastore()
    main.iinc(0, -1).goto("loop")
    main.label("halt")
    main.aload(3).const(0).iaload().ireturn()
    cls.add_method(main.build())

    program = JProgram("avrora")
    program.add_class(cls)
    program.set_entry("Avrora", "main")
    return Subject(
        name="avrora",
        program=_finish(program),
        description="instruction-dispatch simulator (tableswitch loop)",
    )


# ---------------------------------------------------------------------- batik
def build_batik(size: int = 150) -> Subject:
    """Rasteriser: nested scanline loops with inlinable edge functions."""
    width = 48
    cls = JClass("Batik")

    edge = MethodAssembler("Batik", "edge", arg_count=4, returns_value=True)
    # locals: 0=x, 1=y, 2=ax, 3=ay  -> sign of cross product
    edge.load(0).load(3).imul()
    edge.load(1).load(2).imul()
    edge.isub()
    edge.ifge("inside")
    edge.const(0).ireturn()
    edge.label("inside")
    edge.const(1).ireturn()
    cls.add_method(edge.build())

    shade = MethodAssembler("Batik", "shade", arg_count=2, returns_value=True)
    # locals: 0=x, 1=y -> cheap shading value
    shade.load(0).load(1).imul().const(255).iand().ireturn()
    cls.add_method(shade.build())

    main = MethodAssembler("Batik", "main", arg_count=0, returns_value=True)
    # locals: 0=y, 1=x, 2=acc, 3=rows
    main.const(0).store(2)
    main.const(size).store(3)
    main.const(0).store(0)
    main.label("rows")
    main.load(0).load(3).if_icmpge("done")
    main.const(0).store(1)
    main.label("cols")
    main.load(1).const(width).if_icmpge("row_done")
    main.load(1).load(0).const(31).const(17)
    main.invokestatic("Batik", "edge", 4, True)
    main.ifeq("skip")
    main.load(2)
    main.load(1).load(0).invokestatic("Batik", "shade", 2, True)
    main.iadd().store(2)
    main.label("skip")
    main.iinc(1, 1).goto("cols")
    main.label("row_done")
    main.iinc(0, 1).goto("rows")
    main.label("done")
    main.load(2).ireturn()
    cls.add_method(main.build())

    program = JProgram("batik")
    program.add_class(cls)
    program.set_entry("Batik", "main")
    return Subject(
        name="batik",
        program=_finish(program),
        description="scanline rasteriser (nested arithmetic loops)",
    )


# ------------------------------------------------------------------------ fop
def build_fop(size: int = 60) -> Subject:
    """Layout engine: recursive tree building + virtual dispatch + throws.

    A random binary layout tree is built (``build``), then measured by
    virtual ``measure`` methods overridden per node class; text nodes with
    a zero width throw a LayoutException handled at the root.
    """
    base = JClass("Node", fields=("kind", "left", "right", "width"))
    measure_base = MethodAssembler(
        "Node", "measure", arg_count=1, returns_value=True, is_static=False
    )
    measure_base.aload(0).getfield("Node", "width").ireturn()
    base.add_method(measure_base.build())

    block = JClass("BlockNode", superclass="Node")
    measure_block = MethodAssembler(
        "BlockNode", "measure", arg_count=1, returns_value=True, is_static=False
    )
    # width = measure(left) + measure(right)
    measure_block.aload(0).getfield("Node", "left")
    measure_block.invokevirtual("Node", "measure", 1, True)
    measure_block.aload(0).getfield("Node", "right")
    measure_block.invokevirtual("Node", "measure", 1, True)
    measure_block.iadd().ireturn()
    block.add_method(measure_block.build())

    inline = JClass("InlineNode", superclass="Node")
    measure_inline = MethodAssembler(
        "InlineNode", "measure", arg_count=1, returns_value=True, is_static=False
    )
    # max(left, right) approximated by left + (right>>1)
    measure_inline.aload(0).getfield("Node", "left")
    measure_inline.invokevirtual("Node", "measure", 1, True)
    measure_inline.aload(0).getfield("Node", "right")
    measure_inline.invokevirtual("Node", "measure", 1, True)
    measure_inline.const(1).ishr().iadd().ireturn()
    inline.add_method(measure_inline.build())

    text = JClass("TextNode", superclass="Node")
    measure_text = MethodAssembler(
        "TextNode", "measure", arg_count=1, returns_value=True, is_static=False
    )
    measure_text.aload(0).getfield("Node", "width").store(1)
    measure_text.load(1).ifne("ok")
    measure_text.new("LayoutException").athrow()
    measure_text.label("ok")
    measure_text.load(1).ireturn()
    text.add_method(measure_text.build())

    driver = JClass("Fop")
    build = MethodAssembler("Fop", "build", arg_count=2, returns_value=True)
    # locals: 0=depth, 1=seed, 2=node, 3=seed'
    build.load(1).invokestatic("Fop", "rand", 1, True).store(3)
    build.load(0).ifgt("internal")
    # leaf: TextNode with width seed%17 (zero sometimes -> throw)
    build.new("TextNode").astore(2)
    build.aload(2).load(3).const(17).irem().putfield("Node", "width")
    build.aload(2).areturn()
    build.label("internal")
    build.load(3).const(1).iand().ifeq("make_block")
    build.new("InlineNode").astore(2)
    build.goto("children")
    build.label("make_block")
    build.new("BlockNode").astore(2)
    build.label("children")
    build.aload(2)
    build.load(0).const(1).isub().load(3).invokestatic("Fop", "build", 2, True)
    build.putfield("Node", "left")
    build.aload(2)
    build.load(0).const(1).isub()
    build.load(3).const(7919).iadd().invokestatic("Fop", "build", 2, True)
    build.putfield("Node", "right")
    build.aload(2).areturn()
    driver.add_method(build.build())
    driver.add_method(_rand_method("Fop").build())

    main = MethodAssembler("Fop", "main", arg_count=0, returns_value=True)
    # locals: 0=i, 1=acc, 2=tree
    main.const(0).store(0)
    main.const(0).store(1)
    main.label("head")
    main.load(0).const(size).if_icmpge("done")
    main.const(5).load(0).const(31).imul().const(11).iadd()
    main.invokestatic("Fop", "build", 2, True).astore(2)
    main.label("try_start")
    main.aload(2).invokevirtual("Node", "measure", 1, True)
    main.load(1).iadd().store(1)
    main.label("try_end")
    main.goto("next")
    main.label("catch")
    main.pop()  # discard the exception object
    main.iinc(1, -1)
    main.label("next")
    main.iinc(0, 1).goto("head")
    main.label("done")
    main.load(1).ireturn()
    main.handler("try_start", "try_end", "catch")
    driver.add_method(main.build())

    program = JProgram("fop")
    for jclass in (base, block, inline, text, driver, JClass("LayoutException")):
        program.add_class(jclass)
    program.set_entry("Fop", "main")
    return Subject(
        name="fop",
        program=_finish(program),
        description="layout tree: recursion, virtual dispatch, exceptions",
    )


# ------------------------------------------------------------------------- h2
def build_h2(size: int = 600, workers: int = 3) -> Subject:
    """Hash-table database: multi-threaded insert/lookup transactions."""
    buckets = 128
    cls = JClass("H2")
    cls_fields = ("table",)
    cls.fields = cls_fields

    setup = MethodAssembler("H2", "setup", arg_count=0, returns_value=False)
    setup.const(buckets).newarray().putstatic("H2", "table")
    setup.return_()
    cls.add_method(setup.build())

    hashm = MethodAssembler("H2", "hash", arg_count=1, returns_value=True)
    hashm.load(0).const(2654435761).imul()
    hashm.const(0x7FFFFFFF).iand()
    hashm.const(buckets).irem().ireturn()
    cls.add_method(hashm.build())

    insert = MethodAssembler("H2", "insert", arg_count=1, returns_value=True)
    # locals: 0=key, 1=slot, 2=probes, 3=occupant
    insert.load(0).invokestatic("H2", "hash", 1, True).store(1)
    insert.const(0).store(2)
    insert.label("probe")
    insert.load(2).const(buckets).if_icmpge("full")
    insert.getstatic("H2", "table").load(1).iaload().store(3)
    insert.load(3).ifeq("empty")
    insert.load(3).load(0).if_icmpeq("exists")
    insert.load(1).const(1).iadd().const(buckets).irem().store(1)
    insert.iinc(2, 1).goto("probe")
    insert.label("empty")
    insert.getstatic("H2", "table").load(1).load(0).iastore()
    insert.const(1).ireturn()
    insert.label("exists")
    insert.const(0).ireturn()
    insert.label("full")
    insert.const(0).ireturn()
    cls.add_method(insert.build())

    lookup = MethodAssembler("H2", "lookup", arg_count=1, returns_value=True)
    # locals: 0=key, 1=slot, 2=probes
    lookup.load(0).invokestatic("H2", "hash", 1, True).store(1)
    lookup.const(0).store(2)
    lookup.label("probe")
    lookup.load(2).const(buckets).if_icmpge("miss")
    lookup.getstatic("H2", "table").load(1).iaload().load(0).if_icmpeq("hit")
    lookup.getstatic("H2", "table").load(1).iaload().ifeq("miss")
    lookup.load(1).const(1).iadd().const(buckets).irem().store(1)
    lookup.iinc(2, 1).goto("probe")
    lookup.label("hit")
    lookup.const(1).ireturn()
    lookup.label("miss")
    lookup.const(0).ireturn()
    cls.add_method(lookup.build())

    worker = MethodAssembler("H2", "worker", arg_count=1, returns_value=True)
    # locals: 0=seed, 1=ops, 2=acc, 3=key
    worker.const(size).store(1)
    worker.const(0).store(2)
    worker.label("loop")
    worker.load(1).ifle("done")
    _emit_lcg(worker, 0)
    worker.load(0).const(97).irem().const(1).iadd().store(3)
    worker.load(0).const(3).iand().ifne("do_lookup")
    worker.load(3).invokestatic("H2", "insert", 1, True)
    worker.load(2).iadd().store(2)
    worker.goto("next")
    worker.label("do_lookup")
    worker.load(3).invokestatic("H2", "lookup", 1, True)
    worker.load(2).iadd().store(2)
    worker.label("next")
    worker.iinc(1, -1).goto("loop")
    worker.label("done")
    worker.load(2).ireturn()
    cls.add_method(worker.build())

    main = MethodAssembler("H2", "main", arg_count=0, returns_value=True)
    main.invokestatic("H2", "setup", 0, False)
    main.const(777).invokestatic("H2", "worker", 1, True).ireturn()
    cls.add_method(main.build())

    program = JProgram("h2")
    program.add_class(cls)
    program.set_entry("H2", "main")
    extra = [("H2", "worker", (1000 + 13 * i,)) for i in range(workers)]
    return Subject(
        name="h2",
        program=_finish(program),
        extra_threads=extra,
        description="hash-table database, multi-threaded transactions",
    )


# --------------------------------------------------------------------- jython
def build_jython(size: int = 1_500) -> Subject:
    """Stack-machine interpreter: call-heavy lookupswitch dispatch loop.

    The "Python program" is a little stack program evaluated over and
    over; each operation is a static method call (jython's interpreter is
    famously call-dense).
    """
    prog_len = 24
    cls = JClass("Jython")

    push_op = MethodAssembler("Jython", "op_push", arg_count=2, returns_value=True)
    # (value, acc) -> acc stand-in: acc*3 + value
    push_op.load(1).const(3).imul().load(0).iadd()
    push_op.const(0x7FFFFFFF).iand().ireturn()
    cls.add_method(push_op.build())

    add_op = MethodAssembler("Jython", "op_add", arg_count=1, returns_value=True)
    add_op.load(0).const(7).iadd().ireturn()
    cls.add_method(add_op.build())

    mul_op = MethodAssembler("Jython", "op_mul", arg_count=1, returns_value=True)
    mul_op.load(0).const(3).imul().const(0x7FFFFFFF).iand().ireturn()
    cls.add_method(mul_op.build())

    cmp_op = MethodAssembler("Jython", "op_cmp", arg_count=1, returns_value=True)
    cmp_op.load(0).const(2).irem().ifne("odd")
    cmp_op.const(1).ireturn()
    cmp_op.label("odd")
    cmp_op.const(0).ireturn()
    cls.add_method(cmp_op.build())

    main = MethodAssembler("Jython", "main", arg_count=0, returns_value=True)
    # locals: 0=iterations, 1=ip, 2=acc, 3=opcode, 4=seed
    main.const(size).store(0)
    main.const(0).store(1)
    main.const(1).store(2)
    main.const(40099).store(4)
    main.label("loop")
    main.load(0).ifle("halt")
    _emit_lcg(main, 4)
    main.load(4).load(1).iadd().const(5).irem().store(3)
    main.load(3).lookupswitch(
        {0: "do_push", 1: "do_add", 2: "do_mul", 3: "do_cmp"}, "do_jump"
    )
    main.label("do_push")
    main.load(1).load(2).invokestatic("Jython", "op_push", 2, True).store(2)
    main.goto("next")
    main.label("do_add")
    main.load(2).invokestatic("Jython", "op_add", 1, True).store(2)
    main.goto("next")
    main.label("do_mul")
    main.load(2).invokestatic("Jython", "op_mul", 1, True).store(2)
    main.goto("next")
    main.label("do_cmp")
    main.load(2).invokestatic("Jython", "op_cmp", 1, True).ifeq("next")
    main.iinc(2, 1)
    main.goto("next")
    main.label("do_jump")
    main.load(4).const(prog_len).irem().store(1)
    main.label("next")
    main.load(1).const(1).iadd().const(prog_len).irem().store(1)
    main.iinc(0, -1).goto("loop")
    main.label("halt")
    main.load(2).ireturn()
    cls.add_method(main.build())

    program = JProgram("jython")
    program.add_class(cls)
    program.set_entry("Jython", "main")
    return Subject(
        name="jython",
        program=_finish(program),
        description="stack-machine interpreter (call-heavy dispatch)",
    )


# -------------------------------------------------------------------- luindex
def build_luindex(size: int = 250) -> Subject:
    """Indexer: tokenise a pseudo-random document and keep a sorted index
    via binary search + shifting insertion (branch-dense array code)."""
    index_cap = 256
    cls = JClass("Luindex")

    search = MethodAssembler("Luindex", "search", arg_count=3, returns_value=True)
    # locals: 0=index arr, 1=count, 2=needle, 3=lo, 4=hi, 5=mid, 6=val
    search.const(0).store(3)
    search.load(1).store(4)
    search.label("loop")
    search.load(3).load(4).if_icmpge("done")
    search.load(3).load(4).iadd().const(1).ishr().store(5)
    search.aload(0).load(5).iaload().store(6)
    search.load(6).load(2).if_icmplt("go_right")
    search.load(5).store(4).goto("loop")
    search.label("go_right")
    search.load(5).const(1).iadd().store(3).goto("loop")
    search.label("done")
    search.load(3).ireturn()
    cls.add_method(search.build())

    insert = MethodAssembler("Luindex", "insert", arg_count=3, returns_value=True)
    # locals: 0=arr, 1=count, 2=word, 3=pos, 4=i
    insert.load(1).const(index_cap).if_icmplt("room")
    insert.load(1).ireturn()
    insert.label("room")
    insert.aload(0).load(1).load(2).invokestatic("Luindex", "search", 3, True)
    insert.store(3)
    # already present? (pos < count and arr[pos] == word)
    insert.load(3).load(1).if_icmpge("shift")
    insert.aload(0).load(3).iaload().load(2).if_icmpne("shift")
    insert.load(1).ireturn()
    insert.label("shift")
    insert.load(1).store(4)
    insert.label("shift_loop")
    insert.load(4).load(3).if_icmple("place")
    insert.aload(0).load(4)
    insert.aload(0).load(4).const(1).isub().iaload()
    insert.iastore()
    insert.iinc(4, -1).goto("shift_loop")
    insert.label("place")
    insert.aload(0).load(3).load(2).iastore()
    insert.load(1).const(1).iadd().ireturn()
    cls.add_method(insert.build())

    main = MethodAssembler("Luindex", "main", arg_count=0, returns_value=True)
    # locals: 0=docs-left, 1=seed, 2=index, 3=count, 4=tokens-left, 5=word
    main.const(size).store(0)
    main.const(90001).store(1)
    main.const(index_cap).newarray().astore(2)
    main.const(0).store(3)
    main.label("docs")
    main.load(0).ifle("done")
    main.const(12).store(4)
    main.label("tokens")
    main.load(4).ifle("doc_done")
    _emit_lcg(main, 1)
    main.load(1).const(700).irem().store(5)
    main.aload(2).load(3).load(5).invokestatic("Luindex", "insert", 3, True)
    main.store(3)
    main.iinc(4, -1).goto("tokens")
    main.label("doc_done")
    main.iinc(0, -1).goto("docs")
    main.label("done")
    main.load(3).ireturn()
    cls.add_method(main.build())

    program = JProgram("luindex")
    program.add_class(cls)
    program.set_entry("Luindex", "main")
    return Subject(
        name="luindex",
        program=_finish(program),
        description="sorted-index builder (binary search + insertion)",
    )


# ------------------------------------------------------------------- lusearch
def build_lusearch(size: int = 25, workers: int = 2) -> Subject:
    """Search: conjunctive posting-list merge joins, multi-threaded."""
    postings = 48
    cls = JClass("Lusearch")

    build_list = MethodAssembler("Lusearch", "postings", arg_count=1, returns_value=True)
    # locals: 0=seed, 1=arr, 2=i, 3=doc
    build_list.const(postings).newarray().astore(1)
    build_list.const(0).store(2)
    build_list.const(0).store(3)
    build_list.label("fill")
    build_list.load(2).const(postings).if_icmpge("done")
    _emit_lcg(build_list, 0)
    build_list.load(3).load(0).const(5).irem().const(1).iadd().iadd().store(3)
    build_list.aload(1).load(2).load(3).iastore()
    build_list.iinc(2, 1).goto("fill")
    build_list.label("done")
    build_list.aload(1).areturn()
    cls.add_method(build_list.build())

    join = MethodAssembler("Lusearch", "join", arg_count=2, returns_value=True)
    # merge-intersect two sorted posting arrays; locals: 0=a, 1=b, 2=i,
    # 3=j, 4=hits, 5=da, 6=db
    join.const(0).store(2)
    join.const(0).store(3)
    join.const(0).store(4)
    join.label("loop")
    join.load(2).const(postings).if_icmpge("done")
    join.load(3).const(postings).if_icmpge("done")
    join.aload(0).load(2).iaload().store(5)
    join.aload(1).load(3).iaload().store(6)
    join.load(5).load(6).if_icmpne("unequal")
    join.iinc(4, 1).iinc(2, 1).iinc(3, 1).goto("loop")
    join.label("unequal")
    join.load(5).load(6).if_icmpgt("adv_b")
    join.iinc(2, 1).goto("loop")
    join.label("adv_b")
    join.iinc(3, 1).goto("loop")
    join.label("done")
    join.load(4).ireturn()
    cls.add_method(join.build())

    query = MethodAssembler("Lusearch", "query", arg_count=1, returns_value=True)
    # locals: 0=seed, 1=queries-left, 2=hits, 3=list-a, 4=list-b
    query.const(size).store(1)
    query.const(0).store(2)
    query.label("loop")
    query.load(1).ifle("done")
    _emit_lcg(query, 0)
    query.load(0).invokestatic("Lusearch", "postings", 1, True).astore(3)
    query.load(0).const(31).ixor().invokestatic("Lusearch", "postings", 1, True).astore(4)
    query.aload(3).aload(4).invokestatic("Lusearch", "join", 2, True)
    query.load(2).iadd().store(2)
    query.iinc(1, -1).goto("loop")
    query.label("done")
    query.load(2).ireturn()
    cls.add_method(query.build())

    main = MethodAssembler("Lusearch", "main", arg_count=0, returns_value=True)
    main.const(31337).invokestatic("Lusearch", "query", 1, True).ireturn()
    cls.add_method(main.build())

    program = JProgram("lusearch")
    program.add_class(cls)
    program.set_entry("Lusearch", "main")
    extra = [("Lusearch", "query", (5000 + 17 * i,)) for i in range(workers)]
    return Subject(
        name="lusearch",
        program=_finish(program),
        extra_threads=extra,
        description="posting-list merge joins, multi-threaded",
    )


# ------------------------------------------------------------------------ pmd
def build_pmd(size: int = 80, workers: int = 2) -> Subject:
    """AST rule checker: virtual predicates over a synthetic tree,
    multi-threaded; the rule dispatch site doubles as the reflective-call
    example (see ``opaque_call_sites``)."""
    base = JClass("AstNode", fields=("kind", "left", "right", "depth"))
    check_base = MethodAssembler(
        "AstNode", "check", arg_count=1, returns_value=True, is_static=False
    )
    check_base.aload(0).getfield("AstNode", "kind").const(3).irem().ifne("ok")
    check_base.const(1).ireturn()
    check_base.label("ok")
    check_base.const(0).ireturn()
    base.add_method(check_base.build())

    stmt = JClass("StmtNode", superclass="AstNode")
    check_stmt = MethodAssembler(
        "StmtNode", "check", arg_count=1, returns_value=True, is_static=False
    )
    check_stmt.aload(0).getfield("AstNode", "depth").const(4).if_icmple("shallow")
    check_stmt.const(1).ireturn()
    check_stmt.label("shallow")
    check_stmt.const(0).ireturn()
    stmt.add_method(check_stmt.build())

    expr = JClass("ExprNode", superclass="AstNode")
    check_expr = MethodAssembler(
        "ExprNode", "check", arg_count=1, returns_value=True, is_static=False
    )
    check_expr.aload(0).getfield("AstNode", "kind").const(1).iand().ireturn()
    expr.add_method(check_expr.build())

    driver = JClass("Pmd")
    driver.add_method(_rand_method("Pmd").build())

    build = MethodAssembler("Pmd", "build", arg_count=2, returns_value=True)
    # locals: 0=depth, 1=seed, 2=node, 3=seed'
    build.load(1).invokestatic("Pmd", "rand", 1, True).store(3)
    build.load(0).ifgt("internal")
    build.new("AstNode").astore(2)
    build.aload(2).aconst_null().putfield("AstNode", "left")
    build.aload(2).aconst_null().putfield("AstNode", "right")
    build.goto("fill")
    build.label("internal")
    build.load(3).const(1).iand().ifeq("make_stmt")
    build.new("ExprNode").astore(2)
    build.goto("children")
    build.label("make_stmt")
    build.new("StmtNode").astore(2)
    build.label("children")
    build.aload(2)
    build.load(0).const(1).isub().load(3).invokestatic("Pmd", "build", 2, True)
    build.putfield("AstNode", "left")
    build.aload(2)
    build.load(0).const(1).isub().load(3).const(1231).ixor()
    build.invokestatic("Pmd", "build", 2, True)
    build.putfield("AstNode", "right")
    build.label("fill")
    build.aload(2).load(3).const(11).irem().putfield("AstNode", "kind")
    build.aload(2).load(0).putfield("AstNode", "depth")
    build.aload(2).areturn()
    driver.add_method(build.build())

    visit = MethodAssembler("Pmd", "visit", arg_count=1, returns_value=True)
    # locals: 0=node, 1=violations
    visit.aload(0).ifnonnull("live")
    visit.const(0).ireturn()
    visit.label("live")
    visit.aload(0).invokevirtual("AstNode", "check", 1, True).store(1)
    visit.aload(0).getfield("AstNode", "left").invokestatic("Pmd", "visit", 1, True)
    visit.load(1).iadd().store(1)
    visit.aload(0).getfield("AstNode", "right").invokestatic("Pmd", "visit", 1, True)
    visit.load(1).iadd().store(1)
    visit.load(1).ireturn()
    driver.add_method(visit.build())

    worker = MethodAssembler("Pmd", "worker", arg_count=1, returns_value=True)
    # locals: 0=seed, 1=files-left, 2=acc, 3=tree
    worker.const(size).store(1)
    worker.const(0).store(2)
    worker.label("loop")
    worker.load(1).ifle("done")
    _emit_lcg(worker, 0)
    worker.const(4).load(0).invokestatic("Pmd", "build", 2, True).astore(3)
    worker.aload(3).invokestatic("Pmd", "visit", 1, True)
    worker.load(2).iadd().store(2)
    worker.iinc(1, -1).goto("loop")
    worker.label("done")
    worker.load(2).ireturn()
    driver.add_method(worker.build())

    main = MethodAssembler("Pmd", "main", arg_count=0, returns_value=True)
    main.const(5501).invokestatic("Pmd", "worker", 1, True).ireturn()
    driver.add_method(main.build())

    program = JProgram("pmd")
    for jclass in (base, stmt, expr, driver):
        program.add_class(jclass)
    program.set_entry("Pmd", "main")
    # The virtual rule-dispatch call inside Pmd.visit is the site we hide
    # from the ICFG in the reflective-gap experiments.
    visit_method = program.method("Pmd", "visit")
    opaque = ()
    for inst in visit_method.code:
        if inst.methodref is not None and inst.methodref.method_name == "check":
            opaque = (("Pmd.visit", inst.bci),)
            break
    extra = [("Pmd", "worker", (9000 + 29 * i,)) for i in range(workers)]
    return Subject(
        name="pmd",
        program=_finish(program),
        extra_threads=extra,
        description="AST rule checker (virtual predicates), multi-threaded",
        opaque_call_sites=opaque,
    )


# -------------------------------------------------------------------- sunflow
def build_sunflow(size: int = 12) -> Subject:
    """Ray tracer: fixed-point sphere intersection per pixel.

    Arithmetic-dense inner loops that get compiled early -- the subject
    with the highest trace-generation rate, as in the paper.
    """
    width = 32
    cls = JClass("Sunflow")

    intersect = MethodAssembler("Sunflow", "intersect", arg_count=3, returns_value=True)
    # locals: 0=ox, 1=oy, 2=r2 -> discriminant-like value (fixed point)
    intersect.load(0).load(0).imul()
    intersect.load(1).load(1).imul()
    intersect.iadd().store(2)
    intersect.load(2).const(4096).if_icmpgt("miss")
    intersect.const(4096).load(2).isub().ireturn()
    intersect.label("miss")
    intersect.const(0).ireturn()
    cls.add_method(intersect.build())

    shade_px = MethodAssembler("Sunflow", "shade", arg_count=2, returns_value=True)
    # locals: 0=hit, 1=light -> shaded value
    shade_px.load(0).ifne("lit")
    shade_px.const(0).ireturn()
    shade_px.label("lit")
    shade_px.load(0).load(1).imul().const(12).ishr().ireturn()
    cls.add_method(shade_px.build())

    render = MethodAssembler("Sunflow", "render", arg_count=1, returns_value=True)
    # locals: 0=frame, 1=y, 2=x, 3=acc, 4=hit
    render.const(0).store(3)
    render.const(0).store(1)
    render.label("rows")
    render.load(1).const(width).if_icmpge("done")
    render.const(0).store(2)
    render.label("cols")
    render.load(2).const(width).if_icmpge("row_done")
    render.load(2).const(16).isub().load(0).iadd()
    render.load(1).const(16).isub()
    render.const(0)
    render.invokestatic("Sunflow", "intersect", 3, True).store(4)
    render.load(4).const(96).invokestatic("Sunflow", "shade", 2, True)
    render.load(3).iadd().const(0x7FFFFFFF).iand().store(3)
    render.iinc(2, 1).goto("cols")
    render.label("row_done")
    render.iinc(1, 1).goto("rows")
    render.label("done")
    render.load(3).ireturn()
    cls.add_method(render.build())

    main = MethodAssembler("Sunflow", "main", arg_count=0, returns_value=True)
    # locals: 0=frames-left, 1=acc
    main.const(size).store(0)
    main.const(0).store(1)
    main.label("loop")
    main.load(0).ifle("done")
    main.load(0).invokestatic("Sunflow", "render", 1, True)
    main.load(1).iadd().const(0x7FFFFFFF).iand().store(1)
    main.iinc(0, -1).goto("loop")
    main.label("done")
    main.load(1).ireturn()
    cls.add_method(main.build())

    program = JProgram("sunflow")
    program.add_class(cls)
    program.set_entry("Sunflow", "main")
    return Subject(
        name="sunflow",
        program=_finish(program),
        description="fixed-point ray tracer (arithmetic-dense inner loops)",
    )


# ------------------------------------------------------------------- registry
BUILDERS: Dict[str, Callable[..., Subject]] = {
    "avrora": build_avrora,
    "batik": build_batik,
    "fop": build_fop,
    "h2": build_h2,
    "jython": build_jython,
    "luindex": build_luindex,
    "lusearch": build_lusearch,
    "pmd": build_pmd,
    "sunflow": build_sunflow,
}

SUBJECT_NAMES = tuple(sorted(BUILDERS))


def build_subject(name: str, **kwargs) -> Subject:
    """Build one subject by DaCapo name."""
    try:
        builder = BUILDERS[name]
    except KeyError:
        raise KeyError(
            "unknown subject %r (expected one of %s)" % (name, ", ".join(SUBJECT_NAMES))
        ) from None
    return builder(**kwargs)


def all_subjects(**kwargs) -> List[Subject]:
    """Build all nine subjects with default sizes."""
    return [build_subject(name) for name in SUBJECT_NAMES]
