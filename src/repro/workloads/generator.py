"""Seeded random structured-program generator.

Generates terminating, verifier-clean programs for property-based tests
and stress benchmarks: every program is a DAG of methods whose bodies are
random compositions of straight-line arithmetic, if/else, bounded loops,
switches, and calls to later methods (acyclic call graph => guaranteed
termination).  The key property the test suite checks on top: a lossless
PT trace of any generated program reconstructs to exactly the executed
ground-truth path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..jvm.assembler import MethodAssembler
from ..jvm.model import JClass, JProgram
from ..jvm.verifier import verify_program


@dataclass
class GeneratorConfig:
    """Shape knobs for generated programs."""

    methods: int = 4
    max_depth: int = 3  # structural nesting per method body
    max_segment: int = 4  # straight-line instructions per segment
    min_loop: int = 1
    max_loop: int = 4
    call_probability: float = 0.35
    switch_probability: float = 0.2
    throw_probability: float = 0.0  # optional exception arcs


class _MethodGenerator:
    """Emits one random method body."""

    def __init__(self, rng: random.Random, config: GeneratorConfig, index: int):
        self.rng = rng
        self.config = config
        self.index = index
        self.asm = MethodAssembler("Gen", "m%d" % index, arg_count=1, returns_value=True)
        self._label_counter = 0
        self._next_local = 1  # local 0 is the argument / accumulator

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return "%s_%d" % (hint, self._label_counter)

    def _fresh_local(self) -> int:
        local = self._next_local
        self._next_local += 1
        return local

    # ------------------------------------------------------------ structures
    def _straight(self) -> None:
        asm = self.asm
        for _ in range(self.rng.randint(1, self.config.max_segment)):
            choice = self.rng.randrange(5)
            if choice == 0:
                asm.load(0).const(self.rng.randint(1, 9)).iadd().store(0)
            elif choice == 1:
                asm.load(0).const(self.rng.randint(2, 5)).imul()
                asm.const(0x7FFFFFFF).iand().store(0)
            elif choice == 2:
                asm.load(0).const(self.rng.randint(1, 7)).ixor().store(0)
            elif choice == 3:
                asm.load(0).const(self.rng.randint(1, 3)).ishr().store(0)
            else:
                asm.iinc(0, self.rng.randint(-3, 5))

    def _if(self, depth: int) -> None:
        asm = self.asm
        else_label = self._label("else")
        join_label = self._label("join")
        asm.load(0).const(2).irem()
        asm.ifeq(else_label)
        self._body(depth - 1)
        asm.goto(join_label)
        asm.label(else_label)
        self._body(depth - 1)
        asm.label(join_label)

    def _loop(self, depth: int) -> None:
        asm = self.asm
        counter = self._fresh_local()
        iterations = self.rng.randint(self.config.min_loop, self.config.max_loop)
        head = self._label("head")
        done = self._label("done")
        asm.const(iterations).store(counter)
        asm.label(head)
        asm.load(counter).ifle(done)
        self._body(depth - 1)
        asm.iinc(counter, -1)
        asm.goto(head)
        asm.label(done)

    def _switch(self, depth: int) -> None:
        asm = self.asm
        arms = self.rng.randint(2, 4)
        labels = [self._label("case") for _ in range(arms)]
        default = self._label("default")
        join = self._label("sjoin")
        asm.load(0).const(arms + 1).irem()
        asm.tableswitch({key: labels[key] for key in range(arms)}, default)
        for key, label in enumerate(labels):
            asm.label(label)
            self._straight()
            asm.goto(join)
        asm.label(default)
        self._straight()
        asm.label(join)

    def _call(self) -> None:
        callee = self.rng.randrange(self.index + 1, self.config.methods)
        self.asm.load(0).invokestatic("Gen", "m%d" % callee, 1, True).store(0)

    def _throw(self) -> None:
        """A guarded throw with a local handler: exercises exception arcs."""
        asm = self.asm
        skip = self._label("nothrow")
        done = self._label("tdone")
        catch = self._label("catch")
        start = asm.here()
        asm.load(0).const(self.rng.randint(2, 5)).irem()
        asm.ifne(skip)
        asm.new("GenError").athrow()
        asm.label(skip)
        asm.iinc(0, 1)
        end = asm.here()
        asm.goto(done)
        asm.label(catch)
        asm.pop()
        asm.load(0).const(self.rng.randint(1, 15)).ixor().store(0)
        asm.label(done)
        asm.handler(start, end, catch)

    def _body(self, depth: int) -> None:
        rng = self.rng
        if depth <= 0:
            self._straight()
            if self.index + 1 < self.config.methods and rng.random() < self.config.call_probability:
                self._call()
            return
        choice = rng.random()
        if choice < 0.3:
            self._if(depth)
        elif choice < 0.55:
            self._loop(depth)
        elif choice < 0.55 + self.config.switch_probability:
            self._switch(depth)
        elif choice < 0.55 + self.config.switch_probability + self.config.throw_probability:
            self._throw()
        else:
            self._straight()
            if self.index + 1 < self.config.methods and rng.random() < self.config.call_probability:
                self._call()

    def build(self):
        self._body(self.config.max_depth)
        self.asm.load(0).ireturn()
        return self.asm.build()


#: Attempts per method before giving up on a decodable body.  Empirically
#: almost every body is decodable on the first try (ambiguity needs two
#: switch arms with identical random opcode sequences), so a deep retry
#: budget is a safety net, not a hot path.
MAX_REGENERATION_ATTEMPTS = 200


def _method_seed(seed: int, index: int, attempt: int) -> int:
    """Derived sub-seed: deterministic per (program seed, method, attempt)."""
    return (seed * 1_000_003 + index * 7_919 + attempt * 104_729) & 0x7FFFFFFF


def generate_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> JProgram:
    """Generate one verified, *statically decodable* program.

    Earlier revisions padded switch arms with NOP runs so no two arms
    could share an opcode sequence.  Instead of distorting the workload,
    each method body is now checked with the static ambiguity analyzer
    (:mod:`repro.analysis.ambiguity`) as it is built, and regenerated
    from a derived sub-seed until the projection NFA has no diamond.
    Methods are built from the highest index down so every possible
    callee already exists when its callers are checked (the call graph
    only points towards higher indices).
    """
    from ..analysis.ambiguity import check

    config = config or GeneratorConfig()
    methods = {}

    def resolve(ref, virtual):
        target = methods.get(ref.method_name)
        return [target] if target is not None and ref.class_name == "Gen" else []

    for index in reversed(range(config.methods)):
        for attempt in range(MAX_REGENERATION_ATTEMPTS):
            rng = random.Random(_method_seed(seed, index, attempt))
            candidate = _MethodGenerator(rng, config, index).build()
            if check(candidate, resolve).decodable:
                methods[candidate.name] = candidate
                break
        else:
            raise RuntimeError(
                "no decodable body for Gen.m%d within %d attempts (seed %d)"
                % (index, MAX_REGENERATION_ATTEMPTS, seed)
            )

    cls = JClass("Gen")
    for index in range(config.methods):
        cls.add_method(methods["m%d" % index])
    error_class = JClass("GenError")
    main = MethodAssembler("Gen", "main", arg_count=0, returns_value=True)
    main.const(seed % 8191 + 1)
    main.invokestatic("Gen", "m0", 1, True)
    main.ireturn()
    cls.add_method(main.build())
    program = JProgram("generated-%d" % seed)
    program.add_class(cls)
    program.add_class(error_class)
    program.set_entry("Gen", "main")
    verify_program(program)
    return program
