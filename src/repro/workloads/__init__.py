"""Workloads: DaCapo-like subjects and the random program generator."""

from .dacapo import (
    BUILDERS,
    SUBJECT_NAMES,
    Subject,
    all_subjects,
    build_subject,
    default_config,
)

__all__ = [
    "BUILDERS",
    "SUBJECT_NAMES",
    "Subject",
    "all_subjects",
    "build_subject",
    "default_config",
]
