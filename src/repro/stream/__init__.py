"""Streaming incremental decode: tail-follow growing ``RPT2`` archives.

Public surface:

* :class:`StreamDecoder` -- one tenant: poll a growing archive, decode
  committed segments incrementally, ``finalize()`` bit-identical to
  batch :meth:`~repro.core.pipeline.JPortal.analyze_archive`; can
  persist its resumable state into a ``JPSC`` checkpoint sidecar
  (:meth:`~StreamDecoder.write_checkpoint`) and be rebuilt from it
  (:meth:`~StreamDecoder.restore`);
* :class:`StreamSupervisor` -- many tenants on one shared worker pool,
  with per-tenant ``stream.*`` metrics and fault-isolated supervision:
  a :class:`ResilienceConfig` turns on retry/backoff with quarantine
  (:class:`TenantHealth`), watchdog poll deadlines, bounded-memory
  backpressure (:class:`BackpressureConfig`), and automatic
  checkpointing; isolated finalize failures surface as
  :class:`TenantFailure` values instead of exceptions;
* :class:`FlowDelta` -- what one poll changed (including its
  ``error``/``transient``/``shed`` degradation markers).

See ``python -m repro.stream --demo`` for an end-to-end example
(``--kill-at`` demonstrates checkpoint/restore) and DESIGN.md sections
3g and 3j for the architecture.
"""

from .delta import FlowDelta
from .resilience import (
    BackpressureConfig,
    ResilienceConfig,
    RetryPolicy,
    TenantFailure,
    TenantHealth,
    checkpoint_path_for,
)
from .service import StreamDecoder, StreamSupervisor

__all__ = [
    "BackpressureConfig",
    "FlowDelta",
    "ResilienceConfig",
    "RetryPolicy",
    "StreamDecoder",
    "StreamSupervisor",
    "TenantFailure",
    "TenantHealth",
    "checkpoint_path_for",
]
