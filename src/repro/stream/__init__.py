"""Streaming incremental decode: tail-follow growing ``RPT2`` archives.

Public surface:

* :class:`StreamDecoder` -- one tenant: poll a growing archive, decode
  committed segments incrementally, ``finalize()`` bit-identical to
  batch :meth:`~repro.core.pipeline.JPortal.analyze_archive`;
* :class:`StreamSupervisor` -- many tenants on one shared worker pool,
  with per-tenant ``stream.*`` metrics;
* :class:`FlowDelta` -- what one poll changed.

See ``python -m repro.stream --demo`` for an end-to-end example and
DESIGN.md section 3g for the architecture.
"""

from .delta import FlowDelta
from .service import StreamDecoder, StreamSupervisor

__all__ = ["FlowDelta", "StreamDecoder", "StreamSupervisor"]
