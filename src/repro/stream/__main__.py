"""CLI for the streaming service: ``python -m repro.stream``.

Two modes:

* ``--demo [--subject NAME] [--kill-at N]`` -- end to end: run a
  workload subject, commit its trace record-by-record into a growing
  archive while a :class:`~repro.stream.StreamSupervisor` tail-follows
  it, then finalize and check the streamed result against batch
  ``analyze_archive`` on the same sealed file.  With ``--kill-at N``
  the supervisor is discarded after its *N*-th poll (simulating a
  crash) and a fresh one resumes from the ``JPSC`` checkpoint sidecar,
  demonstrating recovery without a finalize replay.

* ``PATH [--interval SECONDS]`` -- monitor an existing (possibly still
  growing) archive with the bare tail reader: print committed records
  and salvage events as they land, finalize on seal or Ctrl-C.  Needs
  no program metadata, so it works on any ``RPT2`` file.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time


def _demo(subject_name: str, kill_at=None) -> int:
    from ..core import JPortal
    from ..core.metadata import collect_metadata
    from ..core.recovery import RecoveryConfig
    from ..pt.archive import ArchiveWriter, iter_archive_events, write_archive_event
    from ..pt.perf import PTConfig, collect
    from ..workloads import build_subject, default_config
    from .resilience import ResilienceConfig
    from .service import StreamSupervisor

    print("demo: running subject %r" % subject_name)
    subject = build_subject(subject_name)
    run = subject.run(default_config())
    config = PTConfig()
    trace = collect(run, config)
    database = collect_metadata(run)
    jportal = JPortal(
        subject.program,
        recovery=RecoveryConfig(cost_per_instruction=run.config.compiled_step_cost),
        engine="array",
    )
    resilience = ResilienceConfig(checkpoint=kill_at is not None)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "demo.rpt2")
        supervisor = StreamSupervisor(resilience=resilience)
        try:
            tenant = supervisor.add_tenant(subject_name, path, jportal)
            polls = 0
            with ArchiveWriter(path) as writer:
                writer.snapshot_metadata(database, include_dumps=False)
                committed = 0
                for event in iter_archive_events(
                    trace, database, config.archive_segment_packets
                ):
                    write_archive_event(writer, event)
                    committed += 1
                    if committed % 4 == 0:  # poll while the file grows
                        delta = supervisor.poll_all()[subject_name]
                        polls += 1
                        if delta.records:
                            print("demo:", delta.describe())
                        if kill_at is not None and polls == kill_at:
                            # Simulate a crash: drop the supervisor and
                            # resume a fresh one from the checkpoint.
                            supervisor.close()
                            print(
                                "demo: killed supervisor after poll %d; "
                                "restoring from checkpoint" % polls
                            )
                            supervisor = StreamSupervisor(resilience=resilience)
                            tenant = supervisor.add_tenant(
                                subject_name, path, jportal, resume=True
                            )
                            restored = supervisor.metrics.counter(
                                "stream.checkpoint.restored"
                            )
                            print(
                                "demo: restore %s (poll cursor at %d)"
                                % (
                                    "clean" if restored else "cold",
                                    tenant.polls,
                                )
                            )
                writer.close()
            delta = supervisor.poll_all()[subject_name]
            print("demo:", delta.describe())
            streamed = supervisor.finalize(subject_name)
        finally:
            supervisor.close()
        print(
            "demo: streamed %d entries, %d anomalies (replayed=%s)"
            % (streamed.total_entries(), streamed.anomalies, tenant.replayed)
        )
        batch = jportal.analyze_archive(path)
        same = (
            streamed.total_entries() == batch.total_entries()
            and streamed.anomalies == batch.anomalies
            and sorted(streamed.flows) == sorted(batch.flows)
        )
        print(
            "demo: batch    %d entries, %d anomalies -> %s"
            % (
                batch.total_entries(),
                batch.anomalies,
                "identical" if same else "MISMATCH",
            )
        )
        return 0 if same else 1


def _monitor(path: str, interval: float) -> int:
    from ..pt.archive import REC_SEGMENT, ArchiveTailReader

    reader = ArchiveTailReader(path)
    print("monitor: tailing %s (Ctrl-C to finalize)" % path)
    try:
        while not reader.sealed:
            records = reader.poll()
            for record in records:
                if record.rtype == REC_SEGMENT:
                    print(
                        "monitor: seq %d core %d tsc [%d, %d] (%d entries)"
                        % (
                            record.seq,
                            record.core,
                            record.tsc_lo,
                            record.tsc_hi,
                            len(record.payload),
                        )
                    )
                else:
                    print(
                        "monitor: seq %d record type 0x%02x"
                        % (record.seq, record.rtype)
                    )
            if not records:
                time.sleep(interval)
    except KeyboardInterrupt:
        print("monitor: interrupted; finalizing")
    contents = reader.finalize()
    stats = contents.stats
    print(
        "monitor: %d/%d segments salvaged, %d bytes, sealed=%s"
        % (
            stats.segments_salvaged,
            stats.segments_total,
            stats.bytes_salvaged,
            stats.sealed,
        )
    )
    for event in stats.events:
        print(
            "monitor: salvage %s at offset %d: %s"
            % (event.kind.value, event.offset, event.detail)
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream", description=__doc__
    )
    parser.add_argument(
        "path", nargs="?", default=None,
        help="RPT2 archive to tail-follow (monitor mode)",
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="run the end-to-end grow/stream/finalize demo",
    )
    parser.add_argument(
        "--subject", default="luindex",
        help="workload subject for --demo (default: luindex)",
    )
    parser.add_argument(
        "--kill-at", type=int, default=None, metavar="N",
        help="demo mode: kill the supervisor after its N-th poll and "
             "resume a fresh one from the JPSC checkpoint",
    )
    parser.add_argument(
        "--interval", type=float, default=0.5,
        help="monitor-mode poll interval in seconds (default: 0.5)",
    )
    args = parser.parse_args(argv)
    if args.demo:
        return _demo(args.subject, kill_at=args.kill_at)
    if args.path is None:
        parser.error("either --demo or an archive PATH is required")
    return _monitor(args.path, args.interval)


if __name__ == "__main__":
    sys.exit(main())
