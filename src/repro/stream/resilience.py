"""Resilience layer for the streaming service: checkpoints, health,
backpressure (:mod:`repro.stream`).

The supervision loop must survive the same hostility the salvage reader
absorbs at the byte level -- but at the *process* level: supervisor
restarts, tenants whose reads fail transiently, tenants that hang, and
tenants whose watermark never advances.  This module holds the three
mechanisms the reworked :class:`~repro.stream.service.StreamSupervisor`
composes:

* the **JPSC checkpoint sidecar** -- a versioned, checksummed,
  atomically written snapshot of one
  :class:`~repro.stream.service.StreamDecoder`'s resumable state
  (reader offset, pending entries, watermark, per-thread decoder
  state, prior-delta cursors).  The framing mirrors the DFA cache's
  ``JPDC`` entries (:mod:`repro.core.dfacache`): magic + format
  version + SHA-256 + payload length over a pickled body, written
  temp+fsync+``os.replace`` like the RPM2 metadata snapshot.  A load
  that fails *any* gate -- missing file, bad magic, version skew,
  truncation, checksum mismatch, unpicklable body -- degrades to a
  cold start and publishes a ``stream.checkpoint.<kind>`` counter,
  never an exception.  Staleness (the archive on disk no longer
  matches the checkpointed prefix) is the decoder's check, since it
  needs the archive: see ``StreamDecoder.restore``.

* the **per-tenant health state machine** --
  HEALTHY -> DEGRADED -> QUARANTINED.  Transient failures put a tenant
  in DEGRADED and schedule the next poll after a capped exponential
  backoff with *deterministic* jitter (a hash of the tenant name and
  attempt number, so two tenants degraded in the same round do not
  retry in lockstep, yet every run of the same schedule is
  reproducible).  A success resets to HEALTHY.  Exhausting the retry
  budget quarantines the tenant: it is excluded from poll rounds and
  its ``finalize`` falls back to batch replay -- degradation costs a
  re-decode, never correctness, exactly the archive salvage contract
  one layer up.

* the **bounded-memory backpressure config** -- per-tenant and global
  caps on pending entries and buffered tail bytes.  A breach sheds the
  offending tenant's incremental state to the replay path instead of
  growing without bound.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

#: Bump on any change to the checkpoint payload layout; old sidecars
#: then read as ``version_skew`` and the tenant cold-starts.
CHECKPOINT_VERSION = 1

#: Sidecar framing: magic + little-endian version + SHA-256 + length.
CHECKPOINT_MAGIC = b"JPSC"
_HEADER = struct.Struct("<4sI32sQ")

#: ``stream.checkpoint.<kind>`` counter kinds (mirrors ``cache.anomaly.*``).
ANOMALY_MISSING = "missing"
ANOMALY_CORRUPT = "corrupt_checkpoint"
ANOMALY_VERSION_SKEW = "version_skew"
ANOMALY_STALE = "stale_checkpoint"
ANOMALY_STORE_FAILED = "store_failed"

#: Prefix under which checkpoint damage and lifecycle events publish.
CHECKPOINT_METRIC_PREFIX = "stream.checkpoint."

#: How many trailing archive bytes the fingerprint covers.  Enough to
#: catch a rewritten file, small enough to re-read on every checkpoint.
FINGERPRINT_TAIL_BYTES = 4096


def checkpoint_path_for(archive_path) -> str:
    """The default sidecar path: ``<archive>.jpsc`` next to the file,
    like the ``.meta`` metadata snapshot."""
    return str(archive_path) + ".jpsc"


def encode_checkpoint(state: dict) -> bytes:
    """Frame *state* as one JPSC blob (header + pickled payload)."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    return (
        _HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, digest, len(payload))
        + payload
    )


def write_checkpoint_file(path, state: dict) -> int:
    """Atomically persist *state* to *path*; returns the byte size.

    Temp file + fsync + ``os.replace`` in the sidecar's directory, so a
    crash mid-write leaves either the old checkpoint or the new one,
    never a torn hybrid.  Raises ``OSError`` on I/O failure -- callers
    that must not raise (the supervisor) count ``store_failed`` instead.
    """
    path = str(path)
    blob = encode_checkpoint(state)
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(
        prefix=".checkpoint-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return len(blob)


def load_checkpoint(path) -> Tuple[Optional[dict], Optional[str]]:
    """Read a JPSC sidecar; ``(state, None)`` or ``(None, anomaly kind)``.

    Never raises: every damage class maps to its
    ``stream.checkpoint.<kind>`` suffix and reads as a cold start.
    """
    try:
        with open(str(path), "rb") as handle:
            blob = handle.read()
    except OSError:
        return None, ANOMALY_MISSING
    if len(blob) < _HEADER.size:
        return None, ANOMALY_CORRUPT
    magic, version, digest, length = _HEADER.unpack_from(blob)
    if magic != CHECKPOINT_MAGIC:
        return None, ANOMALY_CORRUPT
    if version != CHECKPOINT_VERSION:
        return None, ANOMALY_VERSION_SKEW
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        return None, ANOMALY_CORRUPT
    if hashlib.sha256(payload).digest() != digest:
        return None, ANOMALY_CORRUPT
    try:
        state = pickle.loads(payload)
    except Exception:
        return None, ANOMALY_CORRUPT
    if not isinstance(state, dict):
        return None, ANOMALY_CORRUPT
    return state, None


def archive_fingerprint(path, offset: int) -> dict:
    """Identify the archive prefix a checkpoint was taken against.

    The writer is append-only, so the bytes *before* the reader's
    offset are immutable on a healthy archive: a CRC over the last
    :data:`FINGERPRINT_TAIL_BYTES` of that prefix (re-read from disk)
    pins them.  On restore, a shorter file or a CRC mismatch means the
    archive was truncated or replaced since the checkpoint -- the
    checkpoint is *stale* and the tenant cold-starts.
    """
    import zlib

    tail_len = min(int(offset), FINGERPRINT_TAIL_BYTES)
    crc = 0
    if tail_len:
        try:
            with open(str(path), "rb") as source:
                source.seek(offset - tail_len)
                blob = source.read(tail_len)
        except OSError:
            blob = b""
        if len(blob) != tail_len:
            # The file no longer covers the checkpointed prefix; make
            # the fingerprint self-evidently unverifiable.
            tail_len = -1
        else:
            crc = zlib.crc32(blob) & 0xFFFFFFFF
    return {"offset": int(offset), "tail_len": tail_len, "tail_crc": crc}


def fingerprint_matches(fingerprint, path) -> bool:
    """Whether the archive at *path* still carries the checkpointed
    prefix (see :func:`archive_fingerprint`)."""
    import zlib

    try:
        offset = int(fingerprint["offset"])
        tail_len = int(fingerprint["tail_len"])
        expected = int(fingerprint["tail_crc"])
    except (TypeError, KeyError, ValueError):
        return False
    if tail_len < 0:
        return False
    if offset == 0:
        return True  # nothing was consumed: trivially resumable
    try:
        size = os.path.getsize(str(path))
        if size < offset:
            return False
        with open(str(path), "rb") as source:
            source.seek(offset - tail_len)
            blob = source.read(tail_len)
    except OSError:
        return False
    if len(blob) != tail_len:
        return False
    return (zlib.crc32(blob) & 0xFFFFFFFF) == expected


# --------------------------------------------------------------- health
class TenantHealth(str, Enum):
    """The per-tenant supervision state machine's states."""

    #: Polling normally.
    HEALTHY = "healthy"
    #: Transient failures seen; polls retried under backoff.
    DEGRADED = "degraded"
    #: Retry budget exhausted; excluded from polls, finalize replays.
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for DEGRADED tenants.

    ``retry_budget`` consecutive failures are retried (each after a
    capped exponential backoff); the next failure quarantines.  Jitter
    is *deterministic* -- derived from the tenant name and attempt
    number -- so concurrent degraded tenants fan out in time yet every
    rerun of a seeded test reproduces the same schedule.
    """

    #: Consecutive failures tolerated before quarantine.
    retry_budget: int = 4
    #: First backoff delay, seconds.
    backoff_base: float = 0.05
    #: Backoff ceiling, seconds.
    backoff_cap: float = 2.0
    #: Exponential growth factor per consecutive failure.
    backoff_factor: float = 2.0
    #: Extra delay fraction in ``[0, jitter)``, deterministically drawn.
    jitter: float = 0.25

    def backoff_delay(self, tenant: str, attempt: int) -> float:
        """Delay before retry *attempt* (1-based) for *tenant*."""
        exponent = max(0, attempt - 1)
        delay = min(
            self.backoff_cap, self.backoff_base * self.backoff_factor ** exponent
        )
        if self.jitter:
            digest = hashlib.sha256(
                ("%s:%d" % (tenant, attempt)).encode("utf-8")
            ).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            delay *= 1.0 + self.jitter * unit
        return delay


@dataclass(frozen=True)
class BackpressureConfig:
    """Memory caps; ``None`` disables the corresponding bound.

    A tenant breaching a per-tenant cap -- or the largest tenant, when
    a global cap is breached -- is *shed*: its incremental state is
    dropped and its ``finalize`` replays from the file, so memory stays
    bounded at the cost of a re-decode.
    """

    #: Per-tenant cap on parsed-but-unreleased entries.
    max_pending_entries: Optional[int] = None
    #: Per-tenant cap on raw buffered tail bytes.
    max_buffered_bytes: Optional[int] = None
    #: Cap on pending entries summed over all live tenants.
    global_max_pending_entries: Optional[int] = None
    #: Cap on buffered tail bytes summed over all live tenants.
    global_max_buffered_bytes: Optional[int] = None


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the reworked supervisor needs, in one value."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)
    #: Wall-clock seconds one poll round waits for a tenant before the
    #: watchdog abandons it (``None``: wait forever, PR-7 behaviour).
    poll_deadline: Optional[float] = None
    #: Whether the supervisor writes JPSC checkpoints automatically.
    checkpoint: bool = False
    #: Poll rounds between automatic checkpoints (1 = every round).
    checkpoint_interval: int = 1


@dataclass
class TenantSupervision:
    """One tenant's mutable health record inside the supervisor."""

    name: str
    policy: RetryPolicy
    health: TenantHealth = TenantHealth.HEALTHY
    consecutive_failures: int = 0
    total_failures: int = 0
    #: Monotonic timestamp before which the tenant is not re-polled.
    next_eligible: float = 0.0
    last_error: Optional[str] = None
    quarantine_reason: Optional[str] = None
    #: Set when the tenant's decoder state must not be trusted (a poll
    #: thread may still be mutating it): finalize replays from the file
    #: without touching the decoder.
    force_replay: bool = False

    def should_poll(self, now: float) -> bool:
        if self.health is TenantHealth.QUARANTINED:
            return False
        return now >= self.next_eligible

    def record_success(self) -> bool:
        """Note a clean poll; ``True`` if this was a recovery."""
        recovered = self.health is TenantHealth.DEGRADED
        if self.health is not TenantHealth.QUARANTINED:
            self.health = TenantHealth.HEALTHY
        self.consecutive_failures = 0
        self.next_eligible = 0.0
        return recovered

    def record_failure(self, error: str, now: float) -> bool:
        """Note a failed poll; ``True`` if this exhausted the budget
        (the caller then quarantines the tenant)."""
        self.consecutive_failures += 1
        self.total_failures += 1
        self.last_error = error
        if self.health is TenantHealth.QUARANTINED:
            return False
        if self.consecutive_failures > self.policy.retry_budget:
            self.health = TenantHealth.QUARANTINED
            self.quarantine_reason = error
            return True
        self.health = TenantHealth.DEGRADED
        self.next_eligible = now + self.policy.backoff_delay(
            self.name, self.consecutive_failures
        )
        return False


@dataclass(frozen=True)
class TenantFailure:
    """A finalize that could not produce a result (returned in that
    tenant's slot by ``finalize_all`` instead of aborting the batch)."""

    tenant: str
    error: str
    #: Parity with JPortalResult consumers that probe ``.salvage``.
    salvage: Optional[object] = None
