"""The per-poll delta a streaming tenant emits (:mod:`repro.stream`).

A batch analysis produces one terminal
:class:`~repro.core.pipeline.JPortalResult`; the streaming service
instead surfaces progress as a sequence of :class:`FlowDelta`\\ s -- one
per poll of the growing archive -- describing what *changed*: how many
records committed, how many observed steps each thread gained, where the
per-thread cursors now stand, and how far the decoder lags behind the
writer.  The deltas are advisory (monitoring, backpressure); the
authoritative flows come from ``finalize()``, whose output is
bit-identical to a batch :meth:`~repro.core.pipeline.JPortal.analyze_archive`
of the same sealed archive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class FlowDelta:
    """What one ``poll()`` of a streaming tenant changed."""

    #: Tenant name (supervisor key).
    tenant: str
    #: 1-based poll ordinal for this tenant.
    poll_index: int
    #: Committed archive records consumed this poll (all types).
    records: int = 0
    #: Segment records among them.
    segments: int = 0
    #: Newly decoded observed steps per thread id.
    new_steps: Dict[int, int] = field(default_factory=dict)
    #: Newly recorded loss holes (all threads).
    new_holes: int = 0
    #: Newly recorded decode anomalies (all threads).
    new_anomalies: int = 0
    #: Newly recorded salvage events (archive damage).
    salvage_events: int = 0
    #: Per-thread cursor: observed steps decoded so far.
    cursors: Dict[int, int] = field(default_factory=dict)
    #: Entries parsed but not yet releasable (watermark backlog).
    pending_entries: int = 0
    #: Segments with at least one unreleased entry (decode lag).
    lag_segments: int = 0
    #: Wall-clock seconds this poll took (ingest + decode).
    latency_seconds: float = 0.0
    #: Whether the archive's seal record has been consumed.
    sealed: bool = False
    #: The poll's failure, if any (``repr`` of the exception).  A set
    #: error never escapes as an exception -- the supervisor's health
    #: machine consumes it (backoff, quarantine).
    error: Optional[str] = None
    #: Whether :attr:`error` was transient (reader state untouched, a
    #: later poll may simply retry) rather than a replay-flagging fault.
    transient: bool = False
    #: Whether this tenant's incremental state was shed to the replay
    #: path (backpressure cap breach or quarantine) -- pending entries
    #: and buffered bytes are zero from here on.
    shed: bool = False

    def new_step_total(self) -> int:
        return sum(self.new_steps.values())

    def describe(self) -> str:
        """One log line: ``records=.. steps=.. lag=.. sealed``."""
        parts = [
            "poll %d" % self.poll_index,
            "records=%d" % self.records,
            "segments=%d" % self.segments,
            "steps=+%d" % self.new_step_total(),
            "lag=%d" % self.lag_segments,
        ]
        if self.new_holes:
            parts.append("holes=+%d" % self.new_holes)
        if self.new_anomalies:
            parts.append("anomalies=+%d" % self.new_anomalies)
        if self.salvage_events:
            parts.append("salvage=+%d" % self.salvage_events)
        if self.error is not None:
            parts.append(
                "error=%s%s" % (self.error, " (transient)" if self.transient else "")
            )
        if self.shed:
            parts.append("shed")
        if self.sealed:
            parts.append("sealed")
        return " ".join(parts)
