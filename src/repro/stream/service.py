"""Streaming incremental decode service (tail-follow the online side).

JPortal's online component periodically drains the trace buffer while the
JVM keeps running (paper Section 5); this module gives the *offline*
side the matching shape: instead of waiting for a sealed archive and
batch-decoding it, a :class:`StreamDecoder` tail-follows a growing
``RPT2`` archive through :class:`~repro.pt.archive.ArchiveTailReader`,
decodes each committed segment with the array engine as it lands, and
emits a :class:`~repro.stream.delta.FlowDelta` per poll.  A
:class:`StreamSupervisor` multiplexes many concurrently traced
processes (tenants), sharding their polls onto one shared worker pool
and publishing per-tenant ``stream.*`` metrics.

**The correctness contract** is bit-identity: ``finalize()`` on a
sealed archive produces exactly the flows, anomaly taxonomy, and
salvage accounting of a batch
:meth:`~repro.core.pipeline.JPortal.analyze_archive` over the same
file.  Two mechanisms enforce it:

* the **watermark release** rule: a parsed entry is handed to a
  decoder only once its timestamp is strictly below every known core's
  last-seen timestamp, so the merged per-thread streams reproduce the
  batch reassembly order (:func:`~repro.core.multicore.split_by_thread`)
  exactly -- equal-timestamp ties cannot straddle the watermark;
* the **replay fallback**: any condition under which incremental state
  might diverge from a batch read -- archive damage (torn tails,
  CRC failures, a missing seal), sideband or metadata arriving behind
  the released watermark, out-of-order entries, a shrunk file, or a
  feed error -- flips a flag, and ``finalize()`` then discards the
  incremental state and delegates to batch ``analyze_archive``
  (counted under ``stream.finalize_replays``).  Degradation costs a
  re-decode, never correctness.

The incremental path decodes with the metadata available *so far*
(snapshot + journal prefix); that equals batch decoding because a
physically consistent trace only branches into code at or after the
code's ``load_tsc``, and any dump arriving at or behind the released
watermark triggers replay instead.

**Fault tolerance** (see :mod:`repro.stream.resilience` and DESIGN.md
section 3j) extends the same degrade-to-replay contract to the process
level: tenants checkpoint their resumable state into an atomically
written ``JPSC`` sidecar so a restarted supervisor resumes tail-follow
instead of re-decoding from scratch; transient I/O faults are retried
under a per-tenant HEALTHY -> DEGRADED -> QUARANTINED health machine
with capped, deterministically jittered backoff; hung polls are
abandoned by a watchdog deadline; and per-tenant/global memory caps
shed an over-budget tenant's incremental state to the replay path.
Every degradation costs a re-decode, never correctness, and never an
escaping exception.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Dict, List, Optional, Tuple

from ..core.metrics import MetricsRegistry
from ..core.multicore import split_loss_at_switches
from ..core.observed import ObservedColumns
from ..core.parallel import BACKENDS, make_executor
from ..pt.archive import (
    REC_CODE_DUMP,
    REC_FORMAT,
    REC_SEGMENT,
    REC_SIDEBAND,
    ArchiveTailReader,
    SalvageStats,
    _load_snapshot,
)
from ..tracesource import get_frontend
from ..tracesource.engine import BatchEventDecoder
from .delta import FlowDelta
from .resilience import (
    ANOMALY_CORRUPT,
    ANOMALY_STALE,
    ANOMALY_STORE_FAILED,
    CHECKPOINT_METRIC_PREFIX,
    BackpressureConfig,
    ResilienceConfig,
    TenantFailure,
    TenantHealth,
    TenantSupervision,
    archive_fingerprint,
    checkpoint_path_for,
    fingerprint_matches,
    load_checkpoint,
    write_checkpoint_file,
)


class StreamDecoder:
    """Incrementally decode one tenant's growing archive.

    Call :meth:`poll` as often as desired while the writer appends;
    call :meth:`finalize` once the writer is done (sealed or crashed).
    Never raises on file content -- damage degrades to the batch-replay
    path.  Memory stays bounded by the undecoded tail: raw bytes live
    only in the tail reader's pending buffer, parsed entries only
    between arrival and watermark release, and decoded steps go
    straight into the per-thread columns the batch pipeline would have
    built anyway.
    """

    def __init__(self, jportal, path, snapshot_path=None, name: str = "tenant"):
        self.jportal = jportal
        self.name = name
        self.reader = ArchiveTailReader(path, snapshot_path=snapshot_path)
        self.metrics = MetricsRegistry()
        self.polls = 0
        self.replayed = False
        self.replay_reason: Optional[str] = None
        #: Transient reader I/O failures survived so far (each one left
        #: the incremental state untouched and was simply retried).
        self.io_errors = 0
        #: Why the incremental state was shed, when it was.
        self.shed_reason: Optional[str] = None
        #: Per-tenant memory caps (set by the supervisor; ``None`` off).
        self.backpressure: Optional[BackpressureConfig] = None
        self._wall_started = time.perf_counter()
        self._replay = False
        self._shed = False
        self._finalized = None
        # Sideband / attribution state (mirrors split_by_thread).
        self._switches_by_core: Dict[int, List[object]] = {}
        self._switch_tscs: Dict[int, List[int]] = {}
        self._default_tid = 0
        self._default_min_tsc: Optional[int] = None
        # Per-core parsed-but-unreleased entries, in canonical
        # (tsc, is_loss) order: (tsc, is_loss, tag, item, seq).
        self._pending: Dict[int, List[Tuple[int, bool, str, object, int]]] = {}
        self._last_key: Dict[int, Tuple[int, bool]] = {}
        self._consumed: Dict[int, int] = {}
        self._seq_remaining: Dict[int, int] = {}
        self._released_any = False
        self._max_released_tsc = -1
        # Commit-order watermark: the writer appends records globally
        # sorted by (tsc, dump-before-segment), so every future record
        # -- on any core, dump or segment -- carries tsc >= this.
        self._commit_tsc = -1
        # Incremental metadata: snapshot sidecar + dump journal so far.
        self._snapshot = None
        self._journal_dumps: List[object] = []
        self._database = None
        self._db_dirty = True
        # Trace format: "pt" unless a format record says otherwise (the
        # writer commits it first, before any segment).
        self._frontend_name = "pt"
        # Per-thread decode state.
        self._decoders: Dict[int, BatchEventDecoder] = {}
        self._columns: Dict[int, ObservedColumns] = {}
        self._prior_steps: Dict[int, int] = {}
        self._prior_holes = 0
        self._prior_anomalies = 0
        self._prior_events = 0

    # ---------------------------------------------------------------- polling
    def poll(self) -> FlowDelta:
        """Consume newly committed records; decode what the watermark
        releases; return the delta.  Never raises on file content."""
        started = time.perf_counter()
        self.polls += 1
        delta = FlowDelta(tenant=self.name, poll_index=self.polls)
        if self._finalized is not None:
            delta.sealed = self.reader.sealed
            return delta
        if self._shed:
            # Incremental state is gone; finalize() replays from the
            # file.  Polls stay cheap no-ops so memory stays at zero.
            delta.shed = True
            delta.sealed = self.reader.sealed
            delta.latency_seconds = time.perf_counter() - started
            return delta
        records = []
        try:
            records = self.reader.poll()
        except OSError as exc:
            # Transient I/O fault (this used to escape the no-raise
            # contract).  The reader consumed nothing, so the
            # incremental state is still exactly consistent: report it
            # on the delta and let the caller retry a later poll --
            # no replay needed.
            self.io_errors += 1
            delta.error = "reader I/O error: %r" % (exc,)
            delta.transient = True
            self._fill_delta(delta)
            delta.latency_seconds = time.perf_counter() - started
            return delta
        except Exception as exc:  # non-I/O reader failure: replay
            delta.error = "reader error: %r" % (exc,)
            self._flag_replay("reader error: %r" % (exc,))
        if self.reader.dirty:
            self._flag_replay("archive shrank or was replaced under the reader")
        try:
            self._load_snapshot_once()
            for record in records:
                if record.rtype == REC_SIDEBAND:
                    self._on_sideband(record.payload)
                elif record.rtype == REC_CODE_DUMP:
                    self._on_dump(record.payload)
                elif record.rtype == REC_FORMAT:
                    self._on_format(record.payload)
                elif record.rtype == REC_SEGMENT:
                    delta.segments += 1
                    self._on_segment(record)
            if not self._replay:
                self._feed(self._release(final=False))
        except Exception as exc:  # no-crash contract: degrade to replay
            self._flag_replay("feed error: %r" % (exc,))
        delta.records = len(records)
        self._enforce_backpressure(delta)
        self._fill_delta(delta)
        delta.latency_seconds = time.perf_counter() - started
        return delta

    def finalize(self, max_workers: int = 1, backend: str = "thread"):
        """Declare the archive done; return the terminal result.

        Bit-identical to ``jportal.analyze_archive(path, ...)`` on the
        same final file: directly so on the replay path, and by
        construction (same reassembly order, same decoders, same
        projection/recovery code path) on the incremental fast path.
        """
        if self._finalized is not None:
            return self._finalized
        contents = None
        try:
            if not self._shed:
                # End-of-stream: lift fault hooks and read caps, then
                # drain the remaining tail *through the decoder* so
                # every still-unread committed record reaches the
                # incremental path.  (reader.finalize() alone would
                # feed the scanner but bypass _on_segment, silently
                # dropping those entries from the fast path -- only
                # reachable when a partial read left bytes behind.)
                self.reader.io_hooks = None
                self.reader.max_poll_bytes = None
                while not (
                    self._replay or self.reader.dirty or self.reader.finished
                ):
                    before = self.reader.offset
                    self.poll()
                    if self.reader.offset == before:
                        break
            if not self._shed:
                # A shed reader is dirty by construction and its
                # finalize would burn a full batch read whose result
                # the replay below re-derives anyway; skip it.
                contents = self.reader.finalize()
        except Exception as exc:
            # A finalize-time read failure (file gone, EIO) degrades to
            # the batch replay below; if *that* read fails too, the
            # error is real and propagates to the supervisor's
            # per-tenant isolation.
            self._flag_replay("finalize read error: %r" % (exc,))
        if self.reader.dirty:
            self._flag_replay("archive shrank or was replaced under the reader")
        if contents is not None and contents.stats.events:
            # Any salvage event (torn tail, CRC damage, missing seal or
            # snapshot, sequence gaps) means the batch reader degraded
            # somewhere the incremental path did not follow entry by
            # entry; replay rather than re-derive the accounting.
            self._flag_replay(
                "salvage events present (%d)" % len(contents.stats.events)
            )
        if self._replay or contents is None:
            self.replayed = True
            self._finalized = self.jportal.analyze_archive(
                self.reader.path,
                max_workers=max_workers,
                backend=backend,
                snapshot_path=self.reader.snapshot_path,
            )
            return self._finalized
        metrics = self.metrics
        try:
            self._feed(self._release(final=True))
            flows = {}
            for tid in sorted(self._decoders):
                with metrics.timer("decode", tid=tid):
                    self._decoders[tid].finish()
            for tid in sorted(self._columns):
                try:
                    flows[tid] = self.jportal._project_and_recover(
                        self._columns[tid], metrics, tid
                    )
                except Exception:
                    flows[tid] = self.jportal._degraded_flow(tid, metrics)
            result = self.jportal._finish(
                contents.to_trace(),
                contents.database_or_empty(),
                flows,
                metrics,
                self._wall_started,
            )
            self.jportal._attach_salvage(result, contents.stats)
        except Exception as exc:
            # Last-ditch backstop: even a bug in the incremental path
            # degrades to a batch replay, never an escaping exception.
            self._flag_replay("finalize error: %r" % (exc,))
            self.replayed = True
            result = self.jportal.analyze_archive(
                self.reader.path,
                max_workers=max_workers,
                backend=backend,
                snapshot_path=self.reader.snapshot_path,
            )
        self._finalized = result
        return result

    def pending_entries(self) -> int:
        return sum(len(entries) for entries in self._pending.values())

    def lag_segments(self) -> int:
        return len(self._seq_remaining)

    def buffered_bytes(self) -> int:
        """Raw tail bytes held by the reader (memory high-water input)."""
        return self.reader.buffered_bytes()

    # ----------------------------------------------------------- backpressure
    def shed(self, reason: str) -> None:
        """Drop every byte of incremental state; rely on batch replay.

        The bounded-memory degradation: pending entries, decoder state,
        sideband, metadata, and the reader's scan buffers are all
        released, ``poll()`` becomes a no-op, and ``finalize()`` takes
        the replay path -- memory goes to (and stays at) zero at the
        cost of one re-decode, never at the cost of correctness.
        Idempotent.
        """
        self._flag_replay(reason)
        if self._shed:
            return
        self._shed = True
        self.shed_reason = reason
        self.reader.release()
        self._pending.clear()
        self._seq_remaining.clear()
        self._last_key.clear()
        self._consumed.clear()
        self._decoders.clear()
        self._columns.clear()
        self._switches_by_core.clear()
        self._switch_tscs.clear()
        self._journal_dumps = []
        self._snapshot = None
        self._database = None
        self._db_dirty = True
        # Delta bookkeeping restarts from the now-empty state, so later
        # polls report zero change rather than negative deltas.
        self._prior_steps = {}
        self._prior_holes = 0
        self._prior_anomalies = 0
        self._prior_events = 0

    def _enforce_backpressure(self, delta: FlowDelta) -> None:
        config = self.backpressure
        if config is None or self._shed:
            return
        if (
            config.max_pending_entries is not None
            and self.pending_entries() > config.max_pending_entries
        ):
            self.shed(
                "pending entries %d exceed cap %d"
                % (self.pending_entries(), config.max_pending_entries)
            )
        elif (
            config.max_buffered_bytes is not None
            and self.buffered_bytes() > config.max_buffered_bytes
        ):
            self.shed(
                "buffered bytes %d exceed cap %d"
                % (self.buffered_bytes(), config.max_buffered_bytes)
            )
        if self._shed:
            delta.shed = True

    # ---------------------------------------------------------- checkpointing
    def checkpoint_state(self) -> dict:
        """The tenant's full resumable state as a picklable dict.

        Everything a restarted process needs to continue tail-follow
        exactly where this one stood: the reader offset and scan state,
        parsed-but-unreleased entries, the watermark, sideband and
        metadata seen so far, per-thread decoder state (the
        ``adopt_state`` field set), prior-delta cursors, and the
        degradation flags.  An archive fingerprint pins the consumed
        prefix so a restore detects truncated-or-replaced files as
        *stale* rather than resuming into garbage.
        """
        if self._finalized is not None:
            raise ValueError("cannot checkpoint a finalized tenant")
        return {
            "name": self.name,
            "polls": self.polls,
            "replay": self._replay,
            "replay_reason": self.replay_reason,
            "shed": self._shed,
            "shed_reason": self.shed_reason,
            "io_errors": self.io_errors,
            "frontend": self._frontend_name,
            "reader": self.reader.export_state(),
            "archive_fingerprint": archive_fingerprint(
                self.reader.path, self.reader.offset
            ),
            "switches_by_core": self._switches_by_core,
            "switch_tscs": self._switch_tscs,
            "default_tid": self._default_tid,
            "default_min_tsc": self._default_min_tsc,
            "pending": self._pending,
            "last_key": self._last_key,
            "consumed": self._consumed,
            "seq_remaining": self._seq_remaining,
            "released_any": self._released_any,
            "max_released_tsc": self._max_released_tsc,
            "commit_tsc": self._commit_tsc,
            "snapshot": self._snapshot,
            "journal_dumps": self._journal_dumps,
            "decoders": {
                tid: decoder.export_state()
                for tid, decoder in self._decoders.items()
            },
            "prior_steps": self._prior_steps,
            "prior_holes": self._prior_holes,
            "prior_anomalies": self._prior_anomalies,
            "prior_events": self._prior_events,
            "metrics": self.metrics.export(),
        }

    def write_checkpoint(self, path=None) -> Optional[int]:
        """Atomically persist a ``JPSC`` checkpoint sidecar.

        Returns the sidecar's byte size, or ``None`` (plus a
        ``stream.checkpoint.store_failed`` counter) on any failure -- a
        tenant that cannot checkpoint simply stays hot, mirroring the
        DFA cache's store contract.  Default path: ``<archive>.jpsc``.
        """
        target = path if path is not None else checkpoint_path_for(self.reader.path)
        try:
            state = self.checkpoint_state()
            size = write_checkpoint_file(target, state)
        except Exception:
            self.metrics.incr(CHECKPOINT_METRIC_PREFIX + ANOMALY_STORE_FAILED)
            return None
        self.metrics.incr(CHECKPOINT_METRIC_PREFIX + "writes")
        return size

    @classmethod
    def restore(
        cls,
        jportal,
        path,
        snapshot_path=None,
        name: str = "tenant",
        checkpoint_path=None,
    ) -> Tuple["StreamDecoder", Optional[str]]:
        """Resume a tenant from its ``JPSC`` sidecar, if possible.

        Returns ``(decoder, anomaly)``.  On a clean resume *anomaly* is
        ``None`` and the decoder continues tail-follow at the
        checkpointed offset.  Any failure -- missing sidecar, corrupt
        or version-skewed blob, an archive that no longer carries the
        checkpointed prefix (*stale*) -- yields a cold-start decoder
        plus the ``stream.checkpoint.<kind>`` suffix explaining why;
        the cold start re-reads from offset zero, which is the replay
        cost, never an exception.
        """
        target = (
            checkpoint_path
            if checkpoint_path is not None
            else checkpoint_path_for(path)
        )
        decoder = cls(jportal, path, snapshot_path=snapshot_path, name=name)
        state, anomaly = load_checkpoint(target)
        if state is None:
            return decoder, anomaly
        fingerprint = state.get("archive_fingerprint")
        if fingerprint is None or not fingerprint_matches(
            fingerprint, decoder.reader.path
        ):
            return decoder, ANOMALY_STALE
        try:
            decoder._restore_state(state)
        except Exception:
            # A well-framed checkpoint whose body does not fit this
            # decoder (e.g. hand-edited or semantically inconsistent):
            # same degradation as a corrupt blob.
            fresh = cls(jportal, path, snapshot_path=snapshot_path, name=name)
            return fresh, ANOMALY_CORRUPT
        return decoder, None

    def _restore_state(self, state: dict) -> None:
        self.polls = state["polls"]
        self._replay = state["replay"]
        self.replay_reason = state["replay_reason"]
        self._shed = state["shed"]
        self.shed_reason = state["shed_reason"]
        self.io_errors = state["io_errors"]
        self._frontend_name = state["frontend"]
        get_frontend(self._frontend_name)  # unknown frontend -> corrupt
        self.reader.restore_state(state["reader"])
        self._switches_by_core = state["switches_by_core"]
        self._switch_tscs = state["switch_tscs"]
        self._default_tid = state["default_tid"]
        self._default_min_tsc = state["default_min_tsc"]
        self._pending = state["pending"]
        self._last_key = state["last_key"]
        self._consumed = state["consumed"]
        self._seq_remaining = state["seq_remaining"]
        self._released_any = state["released_any"]
        self._max_released_tsc = state["max_released_tsc"]
        self._commit_tsc = state["commit_tsc"]
        self._snapshot = state["snapshot"]
        self._journal_dumps = state["journal_dumps"]
        self._prior_steps = state["prior_steps"]
        self._prior_holes = state["prior_holes"]
        self._prior_anomalies = state["prior_anomalies"]
        self._prior_events = state["prior_events"]
        self._database = None
        self._db_dirty = True
        self.metrics.absorb(state["metrics"])
        decoder_states = state["decoders"]
        if decoder_states:
            # Rebuild each thread's decoder against the *restored*
            # metadata view -- the same snapshot + journal prefix the
            # exporting decoder was bound to -- then adopt its
            # mid-stream state, exactly the adopt_state handoff that
            # already powers mid-stream database growth.
            database = self._current_database()
            batch_decoder = get_frontend(self._frontend_name).batch_decoder
            for tid in sorted(decoder_states):
                decoder = batch_decoder(
                    database,
                    self.jportal._lifter_for(database),
                    metrics=self.metrics,
                    tid=tid,
                    policy=self.jportal.degradation_policy,
                )
                decoder.restore_state(decoder_states[tid])
                self._decoders[tid] = decoder
                self._columns[tid] = decoder._columns

    # -------------------------------------------------------------- ingestion
    def _flag_replay(self, reason: str) -> None:
        if not self._replay:
            self._replay = True
            self.replay_reason = reason

    def _load_snapshot_once(self) -> None:
        if self._snapshot is not None:
            return
        probe = SalvageStats()  # throwaway: finalize() does the real accounting
        snapshot = _load_snapshot(self.reader.snapshot_path, probe)
        if snapshot is not None:
            if self._released_any:
                self._flag_replay("metadata snapshot appeared after release")
            self._snapshot = snapshot
            self._db_dirty = True

    def _on_sideband(self, switches) -> None:
        if self._released_any and switches:
            # Released entries were attributed with the old switch set;
            # a new switch could re-own them.
            self._flag_replay("sideband records arrived after release")
        for record in switches:
            per = self._switches_by_core.setdefault(record.core, [])
            tscs = self._switch_tscs.setdefault(record.core, [])
            position = bisect_right(tscs, record.tsc)
            per.insert(position, record)
            tscs.insert(position, record.tsc)
            if self._default_min_tsc is None or record.tsc < self._default_min_tsc:
                self._default_min_tsc = record.tsc
                self._default_tid = record.tid

    def _on_format(self, name: str) -> None:
        if name == self._frontend_name:
            return
        if self._released_any:
            # Released entries were decoded with the wrong frontend's
            # engines (a format record belongs at the head of the file).
            self._flag_replay("format record arrived after release")
        self._frontend_name = name
        get_frontend(name)  # unknown name raises -> replay via poll()

    def _on_dump(self, dump) -> None:
        self._commit_tsc = max(self._commit_tsc, dump.load_tsc)
        if dump.load_tsc <= self._max_released_tsc:
            # Already-released entries were decoded without this code.
            self._flag_replay("code dump arrived behind the released watermark")
        self._journal_dumps.append(dump)
        self._db_dirty = True

    def _on_segment(self, record) -> None:
        self._commit_tsc = max(self._commit_tsc, record.tsc_lo)
        core = record.core
        entries = record.payload
        if not entries:
            return
        new_core = core not in self._last_key
        pending = self._pending.setdefault(core, [])
        self._consumed.setdefault(core, 0)
        last = self._last_key.get(core)
        count = 0
        for tag, item in entries:
            is_loss = tag == "loss"
            tsc = item.start_tsc if is_loss else item.tsc
            key = (tsc, is_loss)
            if last is not None and key < last:
                # Clean archives commit segments in canonical stream
                # order; a decrease means this is not a stream we can
                # decode incrementally in arrival order.
                self._flag_replay("out-of-order entries on core %d" % core)
            last = key
            pending.append((tsc, is_loss, tag, item, record.seq))
            count += 1
        self._last_key[core] = last
        self._seq_remaining[record.seq] = count
        if new_core and pending[0][0] <= self._max_released_tsc:
            # This core's entries interleave below timestamps we already
            # released for other cores.
            self._flag_replay("core %d first appeared behind the watermark" % core)

    # ------------------------------------------------------ release + decode
    def _release(self, final: bool):
        """Entries whose order relative to all future input is settled.

        The watermark ``W`` is the commit-order tsc of the *latest*
        record on disk.  The writer commits records globally sorted by
        ``(tsc, dump-before-segment)`` and a segment's header tsc is
        the minimum of its entries', so every future entry -- on any
        core, including cores that have not appeared yet -- and every
        future code dump carries a timestamp at or above ``W``.
        Releasing strictly-below-``W`` entries therefore can never race
        a tie, and released code can never be invalidated by a
        later-arriving dump, regardless of poll cadence.  Inputs that
        break the sort premise trip the replay triggers instead.
        ``final=True`` (end of file) releases everything.
        """
        if not self._last_key:
            return []
        watermark = None if final else self._commit_tsc
        merged = []
        for core in sorted(self._pending):
            entries = self._pending[core]
            cut = len(entries)
            if watermark is not None:
                cut = 0
                while cut < len(entries) and entries[cut][0] < watermark:
                    cut += 1
            if not cut:
                continue
            base = self._consumed[core]
            for index in range(cut):
                tsc, _is_loss, tag, item, seq = entries[index]
                merged.append((tsc, core, base + index, tag, item, seq))
            self._consumed[core] = base + cut
            del entries[:cut]
        if not merged:
            return []
        # The batch reassembly order: (tsc, core, per-core position) --
        # split_by_thread's global sequence numbers restated.
        merged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        self._released_any = True
        self._max_released_tsc = max(self._max_released_tsc, merged[-1][0])
        for _tsc, _core, _index, _tag, _item, seq in merged:
            remaining = self._seq_remaining[seq] - 1
            if remaining:
                self._seq_remaining[seq] = remaining
            else:
                del self._seq_remaining[seq]
        return merged

    def _owner_of(self, core: int, tsc: int) -> int:
        records = self._switches_by_core.get(core)
        if not records:
            return self._default_tid
        position = bisect_right(self._switch_tscs[core], tsc) - 1
        if position < 0:
            return records[0].tid
        return records[position].tid

    def _feed(self, merged) -> None:
        if not merged:
            return
        runs: Dict[int, List[Tuple[str, object]]] = {}
        for tsc, core, _index, tag, item, _seq in merged:
            if tag == "loss":
                # Same boundary split as split_by_thread: the pieces are
                # appended here, at the span's release position, which is
                # exactly where the batch reassembly sorts them.
                for tid, piece in split_loss_at_switches(
                    item,
                    self._switch_tscs.get(core, ()),
                    lambda t, core=core: self._owner_of(core, t),
                ):
                    runs.setdefault(tid, []).append((tag, piece))
            else:
                runs.setdefault(self._owner_of(core, tsc), []).append(
                    (tag, item)
                )
        database = self._current_database()
        jportal = self.jportal
        batch_decoder = get_frontend(self._frontend_name).batch_decoder
        for tid in sorted(runs):
            decoder = self._decoders.get(tid)
            if decoder is None:
                decoder = batch_decoder(
                    database,
                    jportal._lifter_for(database),
                    metrics=self.metrics,
                    tid=tid,
                    policy=jportal.degradation_policy,
                )
                self._decoders[tid] = decoder
                self._columns[tid] = ObservedColumns(tid)
            with self.metrics.timer("decode", tid=tid):
                decoder.feed(runs[tid], self._columns[tid])

    def _current_database(self):
        if self._db_dirty or self._database is None:
            if self._snapshot is not None:
                self._database = self._snapshot.with_dumps(self._journal_dumps)
            else:
                from ..core.metadata import CodeDatabase
                from ..jvm.machine import AddressSpace

                self._database = CodeDatabase(
                    {}, list(self._journal_dumps), AddressSpace()
                )
            self._db_dirty = False
            # Live decoders rebind to the enlarged database mid-stream:
            # a fresh decoder adopts the old one's state, so the
            # concatenated feeds equal one decode over the full stream.
            jportal = self.jportal
            batch_decoder = get_frontend(self._frontend_name).batch_decoder
            for tid, old in list(self._decoders.items()):
                self._decoders[tid] = batch_decoder(
                    self._database,
                    jportal._lifter_for(self._database),
                    metrics=self.metrics,
                    tid=tid,
                    policy=jportal.degradation_policy,
                ).adopt_state(old)
        return self._database

    def _fill_delta(self, delta: FlowDelta) -> None:
        holes = 0
        anomalies = 0
        for tid, columns in self._columns.items():
            steps = len(columns.symbols)
            prior = self._prior_steps.get(tid, 0)
            if steps != prior:
                delta.new_steps[tid] = steps - prior
            self._prior_steps[tid] = steps
            delta.cursors[tid] = steps
            holes += len(columns.holes())
            anomalies += columns.anomalies
        delta.new_holes = holes - self._prior_holes
        self._prior_holes = holes
        delta.new_anomalies = anomalies - self._prior_anomalies
        self._prior_anomalies = anomalies
        events = len(self.reader.stats.events)
        delta.salvage_events = events - self._prior_events
        self._prior_events = events
        delta.pending_entries = self.pending_entries()
        delta.lag_segments = self.lag_segments()
        delta.sealed = self.reader.sealed


class StreamSupervisor:
    """Multiplex many streaming tenants onto one shared worker pool.

    Each tenant is one concurrently traced process (its own archive,
    program, and analyser).  ``poll_all()`` shards the per-tenant polls
    onto a shared thread pool (:func:`repro.core.parallel.make_executor`)
    and joins deterministically in tenant-name order; per-tenant
    ``stream.*`` metrics land in :attr:`metrics` keyed by tenant index.
    *backend* (``"thread"`` or ``"process"``, the
    :data:`~repro.core.parallel.BACKENDS` pair) and *max_workers* are
    applied where per-thread analysis fans out -- the batch-replay path
    of ``finalize()`` -- since live incremental decoder state is
    host-memory-resident and shards on the thread pool.

    Supervision is fault-isolated per tenant (see
    :mod:`repro.stream.resilience`): a poll that reports a failure puts
    only *that* tenant into DEGRADED (retried under backoff) and
    eventually QUARANTINED (excluded from rounds, finalized via batch
    replay); a poll that outlives ``poll_deadline`` is abandoned by the
    watchdog and its thread left to drain; memory caps shed the largest
    offender; and with ``checkpoint`` enabled every round persists each
    tenant's ``JPSC`` sidecar so `add_tenant(..., resume=True)`` in a
    restarted process continues where this one stopped.  *clock* is the
    monotonic time source for backoff eligibility (injectable so the
    directed tests can run the schedule without sleeping).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        backend: str = "thread",
        resilience: Optional[ResilienceConfig] = None,
        clock=time.monotonic,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                "backend must be one of %r, got %r" % (BACKENDS, backend)
            )
        self.max_workers = max_workers
        self.backend = backend
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.clock = clock
        self.metrics = MetricsRegistry()
        self._tenants: Dict[str, StreamDecoder] = {}
        self._indices: Dict[str, int] = {}
        self._states: Dict[str, TenantSupervision] = {}
        self._checkpoint_paths: Dict[str, Optional[str]] = {}
        #: Polls the watchdog abandoned, still running on the pool.
        self._inflight: Dict[str, object] = {}
        self._rounds = 0
        self._pool = None

    # -------------------------------------------------------------------- API
    def add_tenant(
        self,
        name: str,
        path,
        jportal,
        snapshot_path=None,
        resume: bool = False,
        checkpoint_path=None,
    ) -> StreamDecoder:
        """Register a tenant; with ``resume=True``, restore it from its
        ``JPSC`` checkpoint sidecar (cold start, plus a
        ``stream.checkpoint.<kind>`` anomaly counter, if the sidecar is
        missing, damaged, version-skewed, or stale)."""
        if name in self._tenants:
            raise ValueError("duplicate tenant %r" % name)
        config = self.resilience
        target = checkpoint_path
        if target is None and (resume or config.checkpoint):
            target = checkpoint_path_for(path)
        index = len(self._tenants)
        anomaly = None
        if resume:
            tenant, anomaly = StreamDecoder.restore(
                jportal,
                path,
                snapshot_path=snapshot_path,
                name=name,
                checkpoint_path=target,
            )
        else:
            tenant = StreamDecoder(
                jportal, path, snapshot_path=snapshot_path, name=name
            )
        tenant.backpressure = config.backpressure
        if config.backpressure.max_buffered_bytes is not None:
            # Cap each raw read too, so a single poll cannot balloon
            # the scan buffer far past the configured bound.
            tenant.reader.max_poll_bytes = config.backpressure.max_buffered_bytes
        self._indices[name] = index
        self._tenants[name] = tenant
        self._states[name] = TenantSupervision(name=name, policy=config.retry)
        self._checkpoint_paths[name] = target
        if anomaly is not None:
            self.metrics.incr(CHECKPOINT_METRIC_PREFIX + anomaly, tid=index)
        elif resume:
            self.metrics.incr(CHECKPOINT_METRIC_PREFIX + "restored", tid=index)
        self.metrics.set_state(
            "stream.health", self._states[name].health.value, tid=index
        )
        return tenant

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def health(self, name: str) -> TenantHealth:
        """The tenant's current supervision state."""
        return self._states[name].health

    def poll_all(self) -> Dict[str, FlowDelta]:
        """Poll every eligible tenant once; deterministic join order.

        Fault-isolated: a failing, hanging, or backing-off tenant never
        affects the others' polls.  Quarantined tenants and tenants
        still inside their backoff window are skipped (no delta in the
        result); a poll abandoned by the watchdog stays in flight and
        is reaped by a later round.  Never raises.
        """
        self._rounds += 1
        now = self.clock()
        deltas: Dict[str, FlowDelta] = {}
        for name in sorted(self._inflight):
            future = self._inflight[name]
            if future.done():
                del self._inflight[name]
                self._join(name, future, None, deltas, now)
        due = [
            name
            for name in self.tenants()
            if name not in self._inflight and self._states[name].should_poll(now)
        ]
        deadline = self.resilience.poll_deadline
        if len(due) > 1 or (due and deadline is not None):
            pool = self._executor()
            futures = {
                name: pool.submit(self._tenants[name].poll) for name in due
            }
            stop_at = (
                None if deadline is None else time.monotonic() + deadline
            )
            for name in due:
                timeout = (
                    None
                    if stop_at is None
                    else max(0.0, stop_at - time.monotonic())
                )
                self._join(name, futures[name], timeout, deltas, now)
        else:
            for name in due:
                try:
                    delta = self._tenants[name].poll()
                except Exception as exc:  # isolation backstop
                    self._on_failure(name, "poll raised: %r" % (exc,), now)
                    continue
                deltas[name] = delta
                self._account(name, delta, now)
        self._enforce_global_caps(deltas)
        for name in sorted(deltas):
            self._publish(name, deltas[name])
        self._maybe_checkpoint()
        return deltas

    def checkpoint_all(self) -> Dict[str, Optional[int]]:
        """Write every joinable tenant's ``JPSC`` sidecar now.

        Returns ``{name: sidecar bytes}``; ``None`` marks a tenant that
        was skipped (in-flight poll, already finalized) or whose store
        failed (counted under ``stream.checkpoint.store_failed``).
        """
        return {name: self._checkpoint_tenant(name) for name in self.tenants()}

    def finalize(self, name: str):
        """Finalize one tenant; still correct for degraded, shed,
        quarantined, and even hung tenants (those replay from the file
        without touching racy decoder state)."""
        tenant = self._tenants[name]
        state = self._states[name]
        index = self._indices[name]
        future = self._inflight.pop(name, None)
        if future is not None and (
            not future.done() or future.exception() is not None
        ):
            # The poll thread may still be mutating the decoder (or
            # died mid-mutation): its incremental state cannot be
            # trusted, so replay from the file instead of joining it.
            state.force_replay = True
        if state.force_replay:
            self.metrics.incr("stream.forced_replays", tid=index)
            self.metrics.incr("stream.finalize_replays", tid=index)
            return tenant.jportal.analyze_archive(
                tenant.reader.path,
                max_workers=self.max_workers or 1,
                backend=self.backend,
                snapshot_path=tenant.reader.snapshot_path,
            )
        result = tenant.finalize(
            max_workers=self.max_workers or 1, backend=self.backend
        )
        if tenant.replayed:
            self.metrics.incr("stream.finalize_replays", tid=index)
        return result

    def finalize_all(self) -> Dict[str, object]:
        """Finalize every tenant, isolating failures per tenant.

        A finalize that raises even after its replay fallback (e.g. the
        archive file was deleted outright) yields a
        :class:`~repro.stream.resilience.TenantFailure` in that
        tenant's slot instead of aborting the remaining tenants.
        """
        results: Dict[str, object] = {}
        for name in self.tenants():
            try:
                results[name] = self.finalize(name)
            except Exception as exc:
                self.metrics.incr(
                    "stream.finalize_failures", tid=self._indices[name]
                )
                results[name] = TenantFailure(tenant=name, error=repr(exc))
        return results

    def close(self) -> None:
        if self._pool is not None:
            # Abandoned (hung) polls still occupy pool threads; waiting
            # on them here would turn one hung tenant into a hung
            # shutdown.
            self._pool.shutdown(wait=not self._inflight)
            self._pool = None

    def __enter__(self) -> "StreamSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _executor(self):
        if self._pool is None:
            import os

            workers = self.max_workers or min(
                max(len(self._tenants), 1), os.cpu_count() or 1
            )
            self._pool = make_executor(
                workers, thread_name_prefix="jportal-stream"
            )
        return self._pool

    def _join(self, name, future, timeout, deltas, now) -> None:
        """Collect one tenant's poll future into *deltas* (watchdog)."""
        try:
            delta = future.result(timeout=timeout)
        except _FuturesTimeout:
            self._inflight[name] = future
            self.metrics.incr(
                "stream.watchdog_timeouts", tid=self._indices[name]
            )
            self._on_failure(name, "poll deadline exceeded", now, hung=True)
            return
        except Exception as exc:  # isolation backstop
            self._on_failure(name, "poll raised: %r" % (exc,), now)
            return
        deltas[name] = delta
        self._account(name, delta, now)

    def _account(self, name: str, delta: FlowDelta, now: float) -> None:
        state = self._states[name]
        index = self._indices[name]
        if delta.error is not None:
            self.metrics.incr("stream.poll_errors", tid=index)
            if delta.transient:
                self.metrics.incr("stream.transient_io_errors", tid=index)
            self._note_failure(name, delta.error, now)
        elif state.record_success():
            self.metrics.incr("stream.recoveries", tid=index)
        if delta.shed:
            self.metrics.incr("stream.sheds", tid=index)
        self.metrics.set_state("stream.health", state.health.value, tid=index)

    def _on_failure(self, name: str, error: str, now: float, hung: bool = False) -> None:
        index = self._indices[name]
        self.metrics.incr("stream.poll_errors", tid=index)
        self._note_failure(name, error, now, hung=hung)
        self.metrics.set_state(
            "stream.health", self._states[name].health.value, tid=index
        )

    def _note_failure(
        self, name: str, error: str, now: float, hung: bool = False
    ) -> None:
        state = self._states[name]
        index = self._indices[name]
        exhausted = state.record_failure(error, now)
        if state.health is TenantHealth.DEGRADED:
            self.metrics.incr("stream.retries_scheduled", tid=index)
        if exhausted:
            self.metrics.incr("stream.quarantines", tid=index)
            if hung or name in self._inflight:
                # The poll thread is still running: shedding would race
                # it, so just mark the decoder state untrusted.
                state.force_replay = True
            else:
                self._tenants[name].shed("quarantined: %s" % error)

    def _enforce_global_caps(self, deltas: Dict[str, FlowDelta]) -> None:
        config = self.resilience.backpressure
        bounds = (
            (
                "pending entries",
                config.global_max_pending_entries,
                lambda tenant: tenant.pending_entries(),
            ),
            (
                "buffered bytes",
                config.global_max_buffered_bytes,
                lambda tenant: tenant.buffered_bytes(),
            ),
        )
        for label, cap, measure in bounds:
            if cap is None:
                continue
            while True:
                loads = {
                    name: measure(tenant)
                    for name, tenant in self._tenants.items()
                    if name not in self._inflight and not tenant._shed
                }
                total = sum(loads.values())
                if total <= cap or not loads:
                    break
                # Shed the largest offender first: one shed frees the
                # most memory, so the fewest tenants pay the re-decode.
                victim = max(sorted(loads), key=lambda name: loads[name])
                if loads[victim] == 0:
                    break
                self._tenants[victim].shed(
                    "global %s cap breached (%d > %d)" % (label, total, cap)
                )
                self.metrics.incr("stream.sheds", tid=self._indices[victim])
                if victim in deltas:
                    delta = deltas[victim]
                    delta.shed = True
                    delta.pending_entries = 0
                    delta.lag_segments = 0

    def _maybe_checkpoint(self) -> None:
        config = self.resilience
        if not config.checkpoint:
            return
        if self._rounds % max(1, config.checkpoint_interval):
            return
        for name in self.tenants():
            self._checkpoint_tenant(name)

    def _checkpoint_tenant(self, name: str) -> Optional[int]:
        tenant = self._tenants[name]
        if name in self._inflight or tenant._finalized is not None:
            return None
        index = self._indices[name]
        size = tenant.write_checkpoint(self._checkpoint_paths[name])
        if size is None:
            self.metrics.incr(
                CHECKPOINT_METRIC_PREFIX + ANOMALY_STORE_FAILED, tid=index
            )
        else:
            self.metrics.incr(CHECKPOINT_METRIC_PREFIX + "writes", tid=index)
            self.metrics.observe_max(
                CHECKPOINT_METRIC_PREFIX + "bytes", size, tid=index
            )
        return size

    def _publish(self, name: str, delta: FlowDelta) -> None:
        index = self._indices[name]
        tenant = self._tenants[name]
        metrics = self.metrics
        metrics.incr("stream.polls", tid=index)
        if delta.records:
            metrics.incr("stream.records", delta.records, tid=index)
        if delta.segments:
            metrics.incr("stream.segments", delta.segments, tid=index)
        metrics.add_time("stream.delta_latency", delta.latency_seconds, tid=index)
        metrics.set_gauge("stream.lag_segments", delta.lag_segments, tid=index)
        metrics.set_gauge("stream.queue_depth", delta.pending_entries, tid=index)
        metrics.observe_max(
            "stream.queue_depth_peak", delta.pending_entries, tid=index
        )
        metrics.observe_max(
            "stream.buffer_bytes", tenant.buffered_bytes(), tid=index
        )
