"""Streaming incremental decode service (tail-follow the online side).

JPortal's online component periodically drains the trace buffer while the
JVM keeps running (paper Section 5); this module gives the *offline*
side the matching shape: instead of waiting for a sealed archive and
batch-decoding it, a :class:`StreamDecoder` tail-follows a growing
``RPT2`` archive through :class:`~repro.pt.archive.ArchiveTailReader`,
decodes each committed segment with the array engine as it lands, and
emits a :class:`~repro.stream.delta.FlowDelta` per poll.  A
:class:`StreamSupervisor` multiplexes many concurrently traced
processes (tenants), sharding their polls onto one shared worker pool
and publishing per-tenant ``stream.*`` metrics.

**The correctness contract** is bit-identity: ``finalize()`` on a
sealed archive produces exactly the flows, anomaly taxonomy, and
salvage accounting of a batch
:meth:`~repro.core.pipeline.JPortal.analyze_archive` over the same
file.  Two mechanisms enforce it:

* the **watermark release** rule: a parsed entry is handed to a
  decoder only once its timestamp is strictly below every known core's
  last-seen timestamp, so the merged per-thread streams reproduce the
  batch reassembly order (:func:`~repro.core.multicore.split_by_thread`)
  exactly -- equal-timestamp ties cannot straddle the watermark;
* the **replay fallback**: any condition under which incremental state
  might diverge from a batch read -- archive damage (torn tails,
  CRC failures, a missing seal), sideband or metadata arriving behind
  the released watermark, out-of-order entries, a shrunk file, or a
  feed error -- flips a flag, and ``finalize()`` then discards the
  incremental state and delegates to batch ``analyze_archive``
  (counted under ``stream.finalize_replays``).  Degradation costs a
  re-decode, never correctness.

The incremental path decodes with the metadata available *so far*
(snapshot + journal prefix); that equals batch decoding because a
physically consistent trace only branches into code at or after the
code's ``load_tsc``, and any dump arriving at or behind the released
watermark triggers replay instead.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from ..core.metrics import MetricsRegistry
from ..core.multicore import split_loss_at_switches
from ..core.observed import ObservedColumns
from ..core.parallel import BACKENDS, make_executor
from ..pt.archive import (
    REC_CODE_DUMP,
    REC_FORMAT,
    REC_SEGMENT,
    REC_SIDEBAND,
    ArchiveTailReader,
    SalvageStats,
    _load_snapshot,
)
from ..tracesource import get_frontend
from ..tracesource.engine import BatchEventDecoder
from .delta import FlowDelta


class StreamDecoder:
    """Incrementally decode one tenant's growing archive.

    Call :meth:`poll` as often as desired while the writer appends;
    call :meth:`finalize` once the writer is done (sealed or crashed).
    Never raises on file content -- damage degrades to the batch-replay
    path.  Memory stays bounded by the undecoded tail: raw bytes live
    only in the tail reader's pending buffer, parsed entries only
    between arrival and watermark release, and decoded steps go
    straight into the per-thread columns the batch pipeline would have
    built anyway.
    """

    def __init__(self, jportal, path, snapshot_path=None, name: str = "tenant"):
        self.jportal = jportal
        self.name = name
        self.reader = ArchiveTailReader(path, snapshot_path=snapshot_path)
        self.metrics = MetricsRegistry()
        self.polls = 0
        self.replayed = False
        self.replay_reason: Optional[str] = None
        self._wall_started = time.perf_counter()
        self._replay = False
        self._finalized = None
        # Sideband / attribution state (mirrors split_by_thread).
        self._switches_by_core: Dict[int, List[object]] = {}
        self._switch_tscs: Dict[int, List[int]] = {}
        self._default_tid = 0
        self._default_min_tsc: Optional[int] = None
        # Per-core parsed-but-unreleased entries, in canonical
        # (tsc, is_loss) order: (tsc, is_loss, tag, item, seq).
        self._pending: Dict[int, List[Tuple[int, bool, str, object, int]]] = {}
        self._last_key: Dict[int, Tuple[int, bool]] = {}
        self._consumed: Dict[int, int] = {}
        self._seq_remaining: Dict[int, int] = {}
        self._released_any = False
        self._max_released_tsc = -1
        # Commit-order watermark: the writer appends records globally
        # sorted by (tsc, dump-before-segment), so every future record
        # -- on any core, dump or segment -- carries tsc >= this.
        self._commit_tsc = -1
        # Incremental metadata: snapshot sidecar + dump journal so far.
        self._snapshot = None
        self._journal_dumps: List[object] = []
        self._database = None
        self._db_dirty = True
        # Trace format: "pt" unless a format record says otherwise (the
        # writer commits it first, before any segment).
        self._frontend_name = "pt"
        # Per-thread decode state.
        self._decoders: Dict[int, BatchEventDecoder] = {}
        self._columns: Dict[int, ObservedColumns] = {}
        self._prior_steps: Dict[int, int] = {}
        self._prior_holes = 0
        self._prior_anomalies = 0
        self._prior_events = 0

    # ---------------------------------------------------------------- polling
    def poll(self) -> FlowDelta:
        """Consume newly committed records; decode what the watermark
        releases; return the delta.  Never raises on file content."""
        started = time.perf_counter()
        self.polls += 1
        delta = FlowDelta(tenant=self.name, poll_index=self.polls)
        if self._finalized is not None:
            delta.sealed = self.reader.sealed
            return delta
        records = self.reader.poll()
        if self.reader.dirty:
            self._flag_replay("archive shrank or was replaced under the reader")
        try:
            self._load_snapshot_once()
            for record in records:
                if record.rtype == REC_SIDEBAND:
                    self._on_sideband(record.payload)
                elif record.rtype == REC_CODE_DUMP:
                    self._on_dump(record.payload)
                elif record.rtype == REC_FORMAT:
                    self._on_format(record.payload)
                elif record.rtype == REC_SEGMENT:
                    delta.segments += 1
                    self._on_segment(record)
            if not self._replay:
                self._feed(self._release(final=False))
        except Exception as exc:  # no-crash contract: degrade to replay
            self._flag_replay("feed error: %r" % (exc,))
        delta.records = len(records)
        self._fill_delta(delta)
        delta.latency_seconds = time.perf_counter() - started
        return delta

    def finalize(self, max_workers: int = 1, backend: str = "thread"):
        """Declare the archive done; return the terminal result.

        Bit-identical to ``jportal.analyze_archive(path, ...)`` on the
        same final file: directly so on the replay path, and by
        construction (same reassembly order, same decoders, same
        projection/recovery code path) on the incremental fast path.
        """
        if self._finalized is not None:
            return self._finalized
        contents = self.reader.finalize()
        if self.reader.dirty:
            self._flag_replay("archive shrank or was replaced under the reader")
        if contents.stats.events:
            # Any salvage event (torn tail, CRC damage, missing seal or
            # snapshot, sequence gaps) means the batch reader degraded
            # somewhere the incremental path did not follow entry by
            # entry; replay rather than re-derive the accounting.
            self._flag_replay(
                "salvage events present (%d)" % len(contents.stats.events)
            )
        if self._replay:
            self.replayed = True
            self._finalized = self.jportal.analyze_archive(
                self.reader.path,
                max_workers=max_workers,
                backend=backend,
                snapshot_path=self.reader.snapshot_path,
            )
            return self._finalized
        metrics = self.metrics
        try:
            self._feed(self._release(final=True))
            flows = {}
            for tid in sorted(self._decoders):
                with metrics.timer("decode", tid=tid):
                    self._decoders[tid].finish()
            for tid in sorted(self._columns):
                try:
                    flows[tid] = self.jportal._project_and_recover(
                        self._columns[tid], metrics, tid
                    )
                except Exception:
                    flows[tid] = self.jportal._degraded_flow(tid, metrics)
            result = self.jportal._finish(
                contents.to_trace(),
                contents.database_or_empty(),
                flows,
                metrics,
                self._wall_started,
            )
            self.jportal._attach_salvage(result, contents.stats)
        except Exception as exc:
            # Last-ditch backstop: even a bug in the incremental path
            # degrades to a batch replay, never an escaping exception.
            self._flag_replay("finalize error: %r" % (exc,))
            self.replayed = True
            result = self.jportal.analyze_archive(
                self.reader.path,
                max_workers=max_workers,
                backend=backend,
                snapshot_path=self.reader.snapshot_path,
            )
        self._finalized = result
        return result

    def pending_entries(self) -> int:
        return sum(len(entries) for entries in self._pending.values())

    def lag_segments(self) -> int:
        return len(self._seq_remaining)

    def buffered_bytes(self) -> int:
        """Raw tail bytes held by the reader (memory high-water input)."""
        return self.reader.buffered_bytes()

    # -------------------------------------------------------------- ingestion
    def _flag_replay(self, reason: str) -> None:
        if not self._replay:
            self._replay = True
            self.replay_reason = reason

    def _load_snapshot_once(self) -> None:
        if self._snapshot is not None:
            return
        probe = SalvageStats()  # throwaway: finalize() does the real accounting
        snapshot = _load_snapshot(self.reader.snapshot_path, probe)
        if snapshot is not None:
            if self._released_any:
                self._flag_replay("metadata snapshot appeared after release")
            self._snapshot = snapshot
            self._db_dirty = True

    def _on_sideband(self, switches) -> None:
        if self._released_any and switches:
            # Released entries were attributed with the old switch set;
            # a new switch could re-own them.
            self._flag_replay("sideband records arrived after release")
        for record in switches:
            per = self._switches_by_core.setdefault(record.core, [])
            tscs = self._switch_tscs.setdefault(record.core, [])
            position = bisect_right(tscs, record.tsc)
            per.insert(position, record)
            tscs.insert(position, record.tsc)
            if self._default_min_tsc is None or record.tsc < self._default_min_tsc:
                self._default_min_tsc = record.tsc
                self._default_tid = record.tid

    def _on_format(self, name: str) -> None:
        if name == self._frontend_name:
            return
        if self._released_any:
            # Released entries were decoded with the wrong frontend's
            # engines (a format record belongs at the head of the file).
            self._flag_replay("format record arrived after release")
        self._frontend_name = name
        get_frontend(name)  # unknown name raises -> replay via poll()

    def _on_dump(self, dump) -> None:
        self._commit_tsc = max(self._commit_tsc, dump.load_tsc)
        if dump.load_tsc <= self._max_released_tsc:
            # Already-released entries were decoded without this code.
            self._flag_replay("code dump arrived behind the released watermark")
        self._journal_dumps.append(dump)
        self._db_dirty = True

    def _on_segment(self, record) -> None:
        self._commit_tsc = max(self._commit_tsc, record.tsc_lo)
        core = record.core
        entries = record.payload
        if not entries:
            return
        new_core = core not in self._last_key
        pending = self._pending.setdefault(core, [])
        self._consumed.setdefault(core, 0)
        last = self._last_key.get(core)
        count = 0
        for tag, item in entries:
            is_loss = tag == "loss"
            tsc = item.start_tsc if is_loss else item.tsc
            key = (tsc, is_loss)
            if last is not None and key < last:
                # Clean archives commit segments in canonical stream
                # order; a decrease means this is not a stream we can
                # decode incrementally in arrival order.
                self._flag_replay("out-of-order entries on core %d" % core)
            last = key
            pending.append((tsc, is_loss, tag, item, record.seq))
            count += 1
        self._last_key[core] = last
        self._seq_remaining[record.seq] = count
        if new_core and pending[0][0] <= self._max_released_tsc:
            # This core's entries interleave below timestamps we already
            # released for other cores.
            self._flag_replay("core %d first appeared behind the watermark" % core)

    # ------------------------------------------------------ release + decode
    def _release(self, final: bool):
        """Entries whose order relative to all future input is settled.

        The watermark ``W`` is the commit-order tsc of the *latest*
        record on disk.  The writer commits records globally sorted by
        ``(tsc, dump-before-segment)`` and a segment's header tsc is
        the minimum of its entries', so every future entry -- on any
        core, including cores that have not appeared yet -- and every
        future code dump carries a timestamp at or above ``W``.
        Releasing strictly-below-``W`` entries therefore can never race
        a tie, and released code can never be invalidated by a
        later-arriving dump, regardless of poll cadence.  Inputs that
        break the sort premise trip the replay triggers instead.
        ``final=True`` (end of file) releases everything.
        """
        if not self._last_key:
            return []
        watermark = None if final else self._commit_tsc
        merged = []
        for core in sorted(self._pending):
            entries = self._pending[core]
            cut = len(entries)
            if watermark is not None:
                cut = 0
                while cut < len(entries) and entries[cut][0] < watermark:
                    cut += 1
            if not cut:
                continue
            base = self._consumed[core]
            for index in range(cut):
                tsc, _is_loss, tag, item, seq = entries[index]
                merged.append((tsc, core, base + index, tag, item, seq))
            self._consumed[core] = base + cut
            del entries[:cut]
        if not merged:
            return []
        # The batch reassembly order: (tsc, core, per-core position) --
        # split_by_thread's global sequence numbers restated.
        merged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        self._released_any = True
        self._max_released_tsc = max(self._max_released_tsc, merged[-1][0])
        for _tsc, _core, _index, _tag, _item, seq in merged:
            remaining = self._seq_remaining[seq] - 1
            if remaining:
                self._seq_remaining[seq] = remaining
            else:
                del self._seq_remaining[seq]
        return merged

    def _owner_of(self, core: int, tsc: int) -> int:
        records = self._switches_by_core.get(core)
        if not records:
            return self._default_tid
        position = bisect_right(self._switch_tscs[core], tsc) - 1
        if position < 0:
            return records[0].tid
        return records[position].tid

    def _feed(self, merged) -> None:
        if not merged:
            return
        runs: Dict[int, List[Tuple[str, object]]] = {}
        for tsc, core, _index, tag, item, _seq in merged:
            if tag == "loss":
                # Same boundary split as split_by_thread: the pieces are
                # appended here, at the span's release position, which is
                # exactly where the batch reassembly sorts them.
                for tid, piece in split_loss_at_switches(
                    item,
                    self._switch_tscs.get(core, ()),
                    lambda t, core=core: self._owner_of(core, t),
                ):
                    runs.setdefault(tid, []).append((tag, piece))
            else:
                runs.setdefault(self._owner_of(core, tsc), []).append(
                    (tag, item)
                )
        database = self._current_database()
        jportal = self.jportal
        batch_decoder = get_frontend(self._frontend_name).batch_decoder
        for tid in sorted(runs):
            decoder = self._decoders.get(tid)
            if decoder is None:
                decoder = batch_decoder(
                    database,
                    jportal._lifter_for(database),
                    metrics=self.metrics,
                    tid=tid,
                    policy=jportal.degradation_policy,
                )
                self._decoders[tid] = decoder
                self._columns[tid] = ObservedColumns(tid)
            with self.metrics.timer("decode", tid=tid):
                decoder.feed(runs[tid], self._columns[tid])

    def _current_database(self):
        if self._db_dirty or self._database is None:
            if self._snapshot is not None:
                self._database = self._snapshot.with_dumps(self._journal_dumps)
            else:
                from ..core.metadata import CodeDatabase
                from ..jvm.machine import AddressSpace

                self._database = CodeDatabase(
                    {}, list(self._journal_dumps), AddressSpace()
                )
            self._db_dirty = False
            # Live decoders rebind to the enlarged database mid-stream:
            # a fresh decoder adopts the old one's state, so the
            # concatenated feeds equal one decode over the full stream.
            jportal = self.jportal
            batch_decoder = get_frontend(self._frontend_name).batch_decoder
            for tid, old in list(self._decoders.items()):
                self._decoders[tid] = batch_decoder(
                    self._database,
                    jportal._lifter_for(self._database),
                    metrics=self.metrics,
                    tid=tid,
                    policy=jportal.degradation_policy,
                ).adopt_state(old)
        return self._database

    def _fill_delta(self, delta: FlowDelta) -> None:
        holes = 0
        anomalies = 0
        for tid, columns in self._columns.items():
            steps = len(columns.symbols)
            prior = self._prior_steps.get(tid, 0)
            if steps != prior:
                delta.new_steps[tid] = steps - prior
            self._prior_steps[tid] = steps
            delta.cursors[tid] = steps
            holes += len(columns.holes())
            anomalies += columns.anomalies
        delta.new_holes = holes - self._prior_holes
        self._prior_holes = holes
        delta.new_anomalies = anomalies - self._prior_anomalies
        self._prior_anomalies = anomalies
        events = len(self.reader.stats.events)
        delta.salvage_events = events - self._prior_events
        self._prior_events = events
        delta.pending_entries = self.pending_entries()
        delta.lag_segments = self.lag_segments()
        delta.sealed = self.reader.sealed


class StreamSupervisor:
    """Multiplex many streaming tenants onto one shared worker pool.

    Each tenant is one concurrently traced process (its own archive,
    program, and analyser).  ``poll_all()`` shards the per-tenant polls
    onto a shared thread pool (:func:`repro.core.parallel.make_executor`)
    and joins deterministically in tenant-name order; per-tenant
    ``stream.*`` metrics land in :attr:`metrics` keyed by tenant index.
    *backend* (``"thread"`` or ``"process"``, the
    :data:`~repro.core.parallel.BACKENDS` pair) and *max_workers* are
    applied where per-thread analysis fans out -- the batch-replay path
    of ``finalize()`` -- since live incremental decoder state is
    host-memory-resident and shards on the thread pool.
    """

    def __init__(self, max_workers: Optional[int] = None, backend: str = "thread"):
        if backend not in BACKENDS:
            raise ValueError(
                "backend must be one of %r, got %r" % (BACKENDS, backend)
            )
        self.max_workers = max_workers
        self.backend = backend
        self.metrics = MetricsRegistry()
        self._tenants: Dict[str, StreamDecoder] = {}
        self._indices: Dict[str, int] = {}
        self._pool = None

    # -------------------------------------------------------------------- API
    def add_tenant(
        self, name: str, path, jportal, snapshot_path=None
    ) -> StreamDecoder:
        if name in self._tenants:
            raise ValueError("duplicate tenant %r" % name)
        tenant = StreamDecoder(
            jportal, path, snapshot_path=snapshot_path, name=name
        )
        self._indices[name] = len(self._tenants)
        self._tenants[name] = tenant
        return tenant

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def poll_all(self) -> Dict[str, FlowDelta]:
        """Poll every tenant once (sharded); deterministic join order."""
        names = self.tenants()
        if len(names) > 1:
            pool = self._executor()
            futures = {
                name: pool.submit(self._tenants[name].poll) for name in names
            }
            deltas = {name: futures[name].result() for name in names}
        else:
            deltas = {name: self._tenants[name].poll() for name in names}
        for name in names:
            self._publish(name, deltas[name])
        return deltas

    def finalize(self, name: str):
        tenant = self._tenants[name]
        result = tenant.finalize(
            max_workers=self.max_workers or 1, backend=self.backend
        )
        if tenant.replayed:
            self.metrics.incr(
                "stream.finalize_replays", tid=self._indices[name]
            )
        return result

    def finalize_all(self) -> Dict[str, object]:
        return {name: self.finalize(name) for name in self.tenants()}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "StreamSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _executor(self):
        if self._pool is None:
            import os

            workers = self.max_workers or min(
                max(len(self._tenants), 1), os.cpu_count() or 1
            )
            self._pool = make_executor(
                workers, thread_name_prefix="jportal-stream"
            )
        return self._pool

    def _publish(self, name: str, delta: FlowDelta) -> None:
        index = self._indices[name]
        tenant = self._tenants[name]
        metrics = self.metrics
        metrics.incr("stream.polls", tid=index)
        if delta.records:
            metrics.incr("stream.records", delta.records, tid=index)
        if delta.segments:
            metrics.incr("stream.segments", delta.segments, tid=index)
        metrics.add_time("stream.delta_latency", delta.latency_seconds, tid=index)
        metrics.set_gauge("stream.lag_segments", delta.lag_segments, tid=index)
        metrics.set_gauge("stream.queue_depth", delta.pending_entries, tid=index)
        metrics.observe_max(
            "stream.queue_depth_peak", delta.pending_entries, tid=index
        )
        metrics.observe_max(
            "stream.buffer_bytes", tenant.buffered_bytes(), tid=index
        )
