"""repro: a full reproduction of JPortal (PLDI 2021) on a simulated substrate.

JPortal reconstructs the bytecode-level control flow of JVM programs from
Intel Processor Trace hardware traces.  This package reimplements the
complete system in Python -- including the substrates the paper runs on:

* :mod:`repro.jvm` -- a simulated JVM: bytecode ISA, assembler, verifier,
  CFG/ICFG, template interpreter, JIT compiler with debug info, tiered
  multi-threaded runtime emitting PT-observable branch events;
* :mod:`repro.pt` -- a simulated Intel PT: packets, compressing encoder,
  lossy per-core ring buffers, and a libipt-style decoder;
* :mod:`repro.core` -- JPortal itself: metadata collection, interpreter/JIT
  bytecode decoding, the ICFG-as-NFA projection (Algorithms 1-2), the
  abstraction-guided data recovery (Algorithms 3-4), multi-core trace
  reassembly, and the end-to-end pipeline;
* :mod:`repro.profiling` -- clients and baselines: control-flow profiles,
  Ball-Larus path profiling, sampling profilers, accuracy metrics, and the
  Table 2 overhead model;
* :mod:`repro.workloads` -- nine DaCapo-like subjects plus a random
  program generator.

Quickstart::

    from repro.workloads import build_subject
    from repro.core import JPortal
    from repro.pt.perf import PTConfig

    subject = build_subject("batik")
    run = subject.run()                      # execute + trace
    jportal = JPortal(subject.program)       # build ICFG/NFA once
    result = jportal.analyze_run(run)        # decode/reconstruct/recover
    flow = result.flow_of(0).reconstructed_nodes()
"""

from .core import JPortal, JPortalResult
from .pt.perf import PTConfig
from .workloads import Subject, build_subject

__version__ = "1.0.0"

__all__ = ["JPortal", "JPortalResult", "PTConfig", "Subject", "build_subject", "__version__"]
