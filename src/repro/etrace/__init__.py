"""RISC-V E-Trace frontend: branch-map packets over the shared decode core.

A second :class:`repro.tracesource.TraceFrontend` implementation
(registered as ``"etrace"``), modelled on the Efficient Trace for RISC-V
branch-trace format: outcome bits pack into up-to-31-bit branch maps,
indirect targets are delta-compressed against the previously reported
address, and periodic full-address sync packets bound resynchronisation
cost.  Decode, multicore splitting, archives, salvage, fault injection,
and recovery are all shared with the PT frontend -- selecting the
frontend is ``PTConfig(frontend="etrace")``.

Importing this package registers both the frontend and the RPT1/RPT2
entry codecs for E-Trace packets (:mod:`repro.etrace.serialize`).
"""

from ..tracesource import TraceFrontend, register_frontend
from . import serialize as _serialize  # noqa: F401 - codec registration
from .decoder import ETraceBatchDecoder, ETraceDecoder
from .encoder import ETraceEncoder, ETraceEncoderConfig, encode_core
from .packets import (
    BRANCH_MAP_MAX_BITS,
    ETAddressPacket,
    ETBranchMapPacket,
    ETDisablePacket,
    ETEnablePacket,
    ETPacket,
    ETSyncPacket,
    ETTimePacket,
    ETTrapPacket,
    delta_address_size,
)

#: The E-Trace frontend's registry entry (:mod:`repro.tracesource`).
ETRACE_FRONTEND = register_frontend(
    TraceFrontend(
        name="etrace",
        make_encoder=ETraceEncoder,
        encode_core=encode_core,
        object_decoder=ETraceDecoder,
        batch_decoder=ETraceBatchDecoder,
        encoder_config_type=ETraceEncoderConfig,
    )
)

__all__ = [
    "BRANCH_MAP_MAX_BITS",
    "ETAddressPacket",
    "ETBranchMapPacket",
    "ETDisablePacket",
    "ETEnablePacket",
    "ETPacket",
    "ETRACE_FRONTEND",
    "ETSyncPacket",
    "ETTimePacket",
    "ETTrapPacket",
    "ETraceBatchDecoder",
    "ETraceDecoder",
    "ETraceEncoder",
    "ETraceEncoderConfig",
    "delta_address_size",
    "encode_core",
]
