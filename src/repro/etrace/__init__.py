"""RISC-V E-Trace frontend: branch-map packets over the shared decode core.

A second :class:`repro.tracesource.TraceFrontend` implementation
(registered as ``"etrace"``), modelled on the Efficient Trace for RISC-V
branch-trace format: outcome bits pack into up-to-31-bit branch maps,
indirect targets are delta-compressed against the previously reported
address, and periodic full-address sync packets bound resynchronisation
cost.  Decode, multicore splitting, archives, salvage, fault injection,
and recovery are all shared with the PT frontend -- selecting the
frontend is ``PTConfig(frontend="etrace")``.

Importing this package registers both the frontend and the RPT1/RPT2
entry codecs for E-Trace packets (:mod:`repro.etrace.serialize`).
"""

from ..tracesource import ProjectionModel, TraceFrontend, register_frontend
from . import serialize as _serialize  # noqa: F401 - codec registration
from .decoder import ETraceBatchDecoder, ETraceDecoder
from .encoder import ETraceEncoder, ETraceEncoderConfig, encode_core
from .packets import (
    BRANCH_MAP_MAX_BITS,
    ETAddressPacket,
    ETBranchMapPacket,
    ETDisablePacket,
    ETEnablePacket,
    ETPacket,
    ETSyncPacket,
    ETTimePacket,
    ETTrapPacket,
    delta_address_size,
)

#: E-Trace's static projection: outcome bits pack into branch maps (one
#: header byte + one payload byte per 8 bits, up to 31 bits -- but the
#: map is flushed before every address packet, so interpreted dispatch
#: pays the 2-byte single-bit case), delta-compressed target addresses
#: (1 header + 1/2/4/8 delta bytes; the template/JIT region mix makes
#: 4 typical, as for PT's TIP), and a 10-byte full-address sync every
#: ``sync_interval`` address packets bounding post-loss
#: resynchronisation.
ETRACE_PROJECTION = ProjectionModel(
    name="etrace",
    version=1,
    outcome_batch_bits=BRANCH_MAP_MAX_BITS,
    outcome_header_bytes=1,
    outcome_bits_per_payload_byte=8,
    target_bytes_min=2,
    target_bytes_typical=4,
    target_bytes_max=9,
    sync_interval=ETraceEncoderConfig().sync_interval,
    sync_bytes=10,
    time_bytes=5,
    async_bytes=9,
)

#: The E-Trace frontend's registry entry (:mod:`repro.tracesource`).
ETRACE_FRONTEND = register_frontend(
    TraceFrontend(
        name="etrace",
        make_encoder=ETraceEncoder,
        encode_core=encode_core,
        object_decoder=ETraceDecoder,
        batch_decoder=ETraceBatchDecoder,
        encoder_config_type=ETraceEncoderConfig,
        projection_model=ETRACE_PROJECTION,
    )
)

__all__ = [
    "BRANCH_MAP_MAX_BITS",
    "ETAddressPacket",
    "ETBranchMapPacket",
    "ETDisablePacket",
    "ETEnablePacket",
    "ETPacket",
    "ETRACE_FRONTEND",
    "ETRACE_PROJECTION",
    "ETSyncPacket",
    "ETTimePacket",
    "ETTrapPacket",
    "ETraceBatchDecoder",
    "ETraceDecoder",
    "ETraceEncoder",
    "ETraceEncoderConfig",
    "delta_address_size",
    "encode_core",
]
