"""E-Trace packet codecs for the shared RPT1/RPT2 serialisation layer.

Registers one :func:`repro.pt.serialize.register_entry_codec` codec per
E-Trace packet class, so E-Trace streams flow through the same
:func:`write_entry` / :func:`iter_body` machinery -- and therefore
through the same archive, salvage, and fault-injection layers -- as PT
streams.  Importing this module (which :mod:`repro.etrace` does) is what
makes the tags decodable; the archive scanner triggers that import via
the registry when it sees a format record, *before* any segment body is
parsed.

Tags (little-endian payloads, all starting at 0x10 to stay clear of the
builtin PT range):

====  ==========================================================
byte  meaning
====  ==========================================================
0x10  BRANCH MAP -- u64 tsc, u8 count, u32 packed bits
0x11  ADDRESS    -- u64 tsc, u8 compressed_size, u64 target
0x12  SYNC       -- u64 tsc, u64 target
0x13  TRAP       -- u64 tsc, u64 ip
0x14  ENABLE     -- u64 tsc, u64 ip
0x15  DISABLE    -- u64 tsc, u64 ip
0x16  TIME       -- u64 tsc
====  ==========================================================

Like the TIP codec, ADDRESS stores the full target plus the *logical*
``compressed_size`` so byte accounting survives the round trip; the size
must be one a signed 1/2/4/8-byte delta can produce (header + 1, 2, 4,
or 8), anything else is rejected on both read and write.
"""

from __future__ import annotations

import struct

from ..pt.serialize import TraceFormatError, register_entry_codec
from .packets import (
    BRANCH_MAP_MAX_BITS,
    ETAddressPacket,
    ETBranchMapPacket,
    ETDisablePacket,
    ETEnablePacket,
    ETSyncPacket,
    ETTimePacket,
    ETTrapPacket,
)

TAG_BRANCH_MAP = 0x10
TAG_ADDRESS = 0x11
TAG_SYNC = 0x12
TAG_TRAP = 0x13
TAG_ENABLE = 0x14
TAG_DISABLE = 0x15
TAG_TIME = 0x16

#: Encoded sizes delta compression can produce: header + 1, 2, 4, or 8.
VALID_ET_ADDRESS_SIZES = (2, 3, 5, 9)


def _pack_branch_map(packet: ETBranchMapPacket) -> bytes:
    bits = 0
    for position, bit in enumerate(packet.bits):
        if bit:
            bits |= 1 << position
    return struct.pack("<QBI", packet.tsc, len(packet.bits), bits)


def _unpack_branch_map(need, entry_offset: int) -> ETBranchMapPacket:
    tsc, count, bitfield = struct.unpack("<QBI", need(13))
    if not 1 <= count <= BRANCH_MAP_MAX_BITS:
        raise TraceFormatError(
            "invalid branch-map count %d at offset %d" % (count, entry_offset),
            offset=entry_offset,
            entry_offset=entry_offset,
        )
    bits = tuple(bool(bitfield & (1 << i)) for i in range(count))
    return ETBranchMapPacket(tsc=tsc, bits=bits)


def _pack_address(packet: ETAddressPacket) -> bytes:
    if packet.compressed_size not in VALID_ET_ADDRESS_SIZES:
        raise TraceFormatError(
            "refusing to write invalid address compressed_size %d"
            % packet.compressed_size
        )
    return struct.pack("<QBQ", packet.tsc, packet.compressed_size, packet.target)


def _unpack_address(need, entry_offset: int) -> ETAddressPacket:
    tsc, size, target = struct.unpack("<QBQ", need(17))
    if size not in VALID_ET_ADDRESS_SIZES:
        raise TraceFormatError(
            "invalid address compressed_size %d at offset %d"
            % (size, entry_offset),
            offset=entry_offset,
            entry_offset=entry_offset,
        )
    return ETAddressPacket(tsc=tsc, target=target, compressed_size=size)


def _register_tsc_ip(tag, cls, field):
    def pack(packet) -> bytes:
        return struct.pack("<QQ", packet.tsc, getattr(packet, field))

    def unpack(need, entry_offset: int):
        tsc, value = struct.unpack("<QQ", need(16))
        return cls(**{"tsc": tsc, field: value})

    register_entry_codec(tag, cls, pack, unpack)


def _pack_time(packet: ETTimePacket) -> bytes:
    return struct.pack("<Q", packet.tsc)


def _unpack_time(need, entry_offset: int) -> ETTimePacket:
    (tsc,) = struct.unpack("<Q", need(8))
    return ETTimePacket(tsc=tsc)


register_entry_codec(
    TAG_BRANCH_MAP, ETBranchMapPacket, _pack_branch_map, _unpack_branch_map
)
register_entry_codec(TAG_ADDRESS, ETAddressPacket, _pack_address, _unpack_address)
_register_tsc_ip(TAG_SYNC, ETSyncPacket, "target")
_register_tsc_ip(TAG_TRAP, ETTrapPacket, "ip")
_register_tsc_ip(TAG_ENABLE, ETEnablePacket, "ip")
_register_tsc_ip(TAG_DISABLE, ETDisablePacket, "ip")
register_entry_codec(TAG_TIME, ETTimePacket, _pack_time, _unpack_time)
