"""E-Trace decoders: the shared trace-source engines, under local names.

E-Trace packets subclass the normalised event bases in
:mod:`repro.tracesource.events`, so the generic engines decode them with
no frontend-specific code at all -- branch maps land on the conditional
walk, address/sync packets on the indirect path, traps abandon the
block like FUPs do.  The aliases exist so call sites (and the frontend
registry entry) can name the E-Trace decoder without knowing the
engines are shared.
"""

from __future__ import annotations

from ..tracesource.engine import BatchEventDecoder, EventDecoder

ETraceDecoder = EventDecoder
ETraceBatchDecoder = BatchEventDecoder

__all__ = ["ETraceBatchDecoder", "ETraceDecoder"]
