"""RISC-V E-Trace packets (the branch-trace subset JPortal consumes).

Models the Efficient Trace for RISC-V encoder output (the CVA6
implementation, see PAPERS.md), which compresses differently from Intel
PT:

* ``branch map`` -- a branch count plus up to 31 packed taken/not-taken
  bits in one packet (PT's short TNT carries at most 6);
* ``address`` -- an indirect-jump target, *delta-compressed* against the
  previously reported address (signed difference, 1/2/4/8 bytes; PT
  instead drops matching upper bytes);
* ``sync`` -- a full uncompressed address, emitted at trace start and
  periodically so a decoder can re-synchronise mid-stream;
* ``trap`` -- the source address of an exception or interrupt;
* ``support`` -- encoder status changes (tracing enabled/disabled).

Each packet subclasses its normalised base from
:mod:`repro.tracesource.events`; the shared decode engines dispatch on
those bases, so E-Trace streams flow through exactly the decode, salvage,
and recovery layers PT streams do.  ``size`` is the modelled encoded byte
count (header byte + payload) used by the ring-buffer loss model and the
cross-format compression benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..tracesource.events import (
    AsyncEvent,
    ConditionalOutcomes,
    IndirectTarget,
    TimeRef,
    TraceDisable,
    TraceEnable,
)

#: Branch-map capacity: the format packs up to 31 outcome bits.
BRANCH_MAP_MAX_BITS = 31


@dataclass(frozen=True)
class ETBranchMapPacket(ConditionalOutcomes):
    """A branch count plus packed outcome bits (1 = taken)."""

    @property
    def size(self) -> int:
        # Header byte (format + 5-bit branch count) + packed bit bytes.
        return 1 + (len(self.bits) + 7) // 8

    def __post_init__(self):
        if not 1 <= len(self.bits) <= BRANCH_MAP_MAX_BITS:
            raise ValueError(
                "branch maps carry 1..%d bits" % BRANCH_MAP_MAX_BITS
            )


@dataclass(frozen=True)
class ETAddressPacket(IndirectTarget):
    """An indirect-branch target, delta-compressed against the last one.

    ``compressed_size`` is the encoded byte count (header byte + the
    signed-delta bytes); the full ``target`` is retained so decode needs
    no running-address state.
    """

    compressed_size: int = 9

    @property
    def size(self) -> int:
        return self.compressed_size


@dataclass(frozen=True)
class ETSyncPacket(IndirectTarget):
    """A full-address synchronisation point (trace start / periodic)."""

    @property
    def size(self) -> int:
        # Header byte + context byte + full 8-byte address.
        return 10


@dataclass(frozen=True)
class ETTrapPacket(AsyncEvent):
    """Source address of an exception or interrupt."""

    @property
    def size(self) -> int:
        return 9


@dataclass(frozen=True)
class ETEnablePacket(TraceEnable):
    """Support packet: tracing (re-)enabled at ``ip``."""

    @property
    def size(self) -> int:
        # Enabling re-synchronises: header + context byte + full address.
        return 10


@dataclass(frozen=True)
class ETDisablePacket(TraceDisable):
    """Support packet: tracing disabled (no address payload)."""

    @property
    def size(self) -> int:
        return 2


@dataclass(frozen=True)
class ETTimePacket(TimeRef):
    """Timestamp reference packet."""

    @property
    def size(self) -> int:
        # Header byte + 4 truncated timestamp bytes.
        return 5


ETPacket = Union[
    ETBranchMapPacket,
    ETAddressPacket,
    ETSyncPacket,
    ETTrapPacket,
    ETEnablePacket,
    ETDisablePacket,
    ETTimePacket,
]


def delta_address_size(target: int, last_ip: int) -> int:
    """Encoded size of a delta-compressed address packet.

    The signed difference from the previously reported address is sent
    in the smallest of 1, 2, 4, or 8 bytes; one header byte is always
    present.
    """
    delta = target - last_ip
    if -(1 << 7) <= delta < (1 << 7):
        return 1 + 1
    if -(1 << 15) <= delta < (1 << 15):
        return 1 + 2
    if -(1 << 31) <= delta < (1 << 31):
        return 1 + 4
    return 1 + 8
