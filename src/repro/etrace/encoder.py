"""E-Trace packet encoder: hardware branch events -> branch-map stream.

The same runtime branch events the PT encoder consumes
(:mod:`repro.jvm.machine`), compressed the E-Trace way:

* conditional outcomes accumulate into branch-map packets of up to 31
  bits (the pending map is flushed before any non-outcome packet so the
  bit/branch correspondence survives stream segmentation -- same
  invariant as the PT encoder's TNT flush);
* indirect targets become delta-compressed address packets, with a full
  uncompressed sync packet at trace start and periodically thereafter;
* enable/disable events become support packets;
* time packets are inserted whenever enough time has passed.

The encoder is per-core and stateful; use :func:`encode_core` for the
one-shot case.  Reuses :class:`repro.pt.encoder.EncoderStats`, which
counts through the event bases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..jvm.machine import (
    DisableEvent,
    EnableEvent,
    FupEvent,
    HardwareEvent,
    TipEvent,
    TntEvent,
)
from ..pt.encoder import EncoderStats
from .packets import (
    BRANCH_MAP_MAX_BITS,
    ETAddressPacket,
    ETBranchMapPacket,
    ETDisablePacket,
    ETEnablePacket,
    ETPacket,
    ETSyncPacket,
    ETTimePacket,
    ETTrapPacket,
    delta_address_size,
)


@dataclass
class ETraceEncoderConfig:
    """Encoder tuning.

    Attributes:
        branch_map_capacity: Bits per branch-map packet (the format
            allows up to 31).
        sync_interval: Emit a full-address sync packet after this many
            delta-compressed address packets (decoder resync points).
        time_interval: Emit a time packet when at least this many TSC
            units elapsed since the previous one.
    """

    branch_map_capacity: int = BRANCH_MAP_MAX_BITS
    sync_interval: int = 64
    time_interval: int = 2_000

    def __post_init__(self):
        if not 1 <= self.branch_map_capacity <= BRANCH_MAP_MAX_BITS:
            raise ValueError(
                "branch_map_capacity must be 1..%d" % BRANCH_MAP_MAX_BITS
            )


class ETraceEncoder:
    """Stateful single-core encoder."""

    def __init__(self, config: Optional[ETraceEncoderConfig] = None):
        # ``None`` sentinel (never a shared default-argument instance);
        # see the matching note in :class:`repro.pt.encoder.PTEncoder`.
        self.config = config if config is not None else ETraceEncoderConfig()
        self.stats = EncoderStats()
        self._pending_bits: List[bool] = []
        self._pending_tsc = 0
        self._last_ip: Optional[int] = None
        self._since_sync = 0
        self._last_time_packet = None

    def encode(self, events: Iterable[HardwareEvent]) -> List[ETPacket]:
        """Encode *events* (in TSC order) into packets."""
        packets: List[ETPacket] = []
        for event in events:
            self._maybe_time(event.tsc, packets)
            if isinstance(event, TntEvent):
                if not self._pending_bits:
                    self._pending_tsc = event.tsc
                self._pending_bits.append(event.taken)
                if len(self._pending_bits) >= self.config.branch_map_capacity:
                    self._flush_branch_map(packets)
            elif isinstance(event, TipEvent):
                self._flush_branch_map(packets)
                self._emit_address(event.tsc, event.target, packets)
            elif isinstance(event, FupEvent):
                self._flush_branch_map(packets)
                self._append(packets, ETTrapPacket(event.tsc, event.ip))
            elif isinstance(event, EnableEvent):
                self._flush_branch_map(packets)
                self._append(packets, ETEnablePacket(event.tsc, event.ip))
            elif isinstance(event, DisableEvent):
                self._flush_branch_map(packets)
                self._append(packets, ETDisablePacket(event.tsc, event.ip))
            else:  # pragma: no cover - exhaustive over HardwareEvent
                raise TypeError("unknown event %r" % (event,))
        self._flush_branch_map(packets)
        return packets

    # ------------------------------------------------------------- internals
    def _append(self, packets: List[ETPacket], packet: ETPacket) -> None:
        packets.append(packet)
        self.stats.add(packet)

    def _flush_branch_map(self, packets: List[ETPacket]) -> None:
        if self._pending_bits:
            self._append(
                packets,
                ETBranchMapPacket(self._pending_tsc, tuple(self._pending_bits)),
            )
            self._pending_bits = []

    def _emit_address(self, tsc: int, target: int, packets) -> None:
        if self._last_ip is None or self._since_sync >= self.config.sync_interval:
            self._append(packets, ETSyncPacket(tsc, target))
            self._since_sync = 0
        else:
            size = delta_address_size(target, self._last_ip)
            self._append(packets, ETAddressPacket(tsc, target, size))
            self._since_sync += 1
        self._last_ip = target

    def _maybe_time(self, tsc: int, packets: List[ETPacket]) -> None:
        if (
            self._last_time_packet is None
            or tsc - self._last_time_packet >= self.config.time_interval
        ):
            self._flush_branch_map(packets)
            self._append(packets, ETTimePacket(tsc))
            self._last_time_packet = tsc


def encode_core(
    events: Iterable[HardwareEvent],
    config: Optional[ETraceEncoderConfig] = None,
) -> List[ETPacket]:
    """Encode one core's event list; convenience wrapper."""
    return ETraceEncoder(config).encode(events)
